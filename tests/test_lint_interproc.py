"""Interprocedural lint: call graph, effect fixpoint, RPR007-009,
summary cache, SARIF, and determinism of all of it.

Fixture trees are written to ``tmp_path`` and linted through the real
engine so every test exercises the same pipeline CI runs: per-file
analysis (optionally cached), summary extraction, call-graph linking,
effect propagation, suppression folding.  The invariance tests at the
bottom pin the acceptance criteria: warm, cold, serial and parallel
runs -- and runs under different ``PYTHONHASHSEED`` values -- produce
byte-identical human and SARIF reports.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint.callgraph import build_call_graph, build_module_summary, module_name
from repro.lint.checker import FileContext
from repro.lint.effects import propagate_effects, sanction_closure
from repro.lint.engine import LintReport, lint_paths, render_human
from repro.lint.sarif import render_sarif
from repro.lint.summaries import SummaryCache, analyzer_fingerprint, entry_key

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src), encoding="utf-8")
    return root


def summary_of(source: str, relpath: str = "pkg/mod.py"):
    import ast

    src = textwrap.dedent(source)
    return build_module_summary(FileContext(relpath, src, ast.parse(src)))


def lint(root: Path, **kw) -> LintReport:
    return lint_paths([root], **kw)


def rules_of(report: LintReport) -> set[str]:
    return {f.rule for f in report.active}


# ----------------------------------------------------------------------
# call-graph construction
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_name_mapping(self) -> None:
        assert module_name("sim/driver.py") == "sim.driver"
        assert module_name("workload/__init__.py") == "workload"
        assert module_name("__init__.py") == ""

    def test_local_and_dotted_edges(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """
                    from pkg.b import helper

                    def top():
                        helper()
                        local()

                    def local():
                        pass
                """,
                "pkg/b.py": """
                    def helper():
                        pass
                """,
            },
        )
        import ast

        summaries = []
        for rel in ("pkg/__init__.py", "pkg/a.py", "pkg/b.py"):
            src = (tmp_path / rel).read_text()
            summaries.append(build_module_summary(FileContext(rel, src, ast.parse(src))))
        graph = build_call_graph(summaries)
        callees = {c for _, c in graph.resolved["pkg/a.py::top"]}
        assert callees == {"pkg/b.py::helper", "pkg/a.py::local"}

    def test_cycles_terminate(self) -> None:
        import ast

        src = textwrap.dedent(
            """
            import time

            def ping():
                pong()

            def pong():
                ping()
                time.time()
            """
        )
        s = build_module_summary(FileContext("m.py", src, ast.parse(src)))
        graph = build_call_graph([s])
        effects = propagate_effects(graph)
        assert effects["m.py::ping"] == frozenset({"wall-clock"})
        assert effects["m.py::pong"] == frozenset({"wall-clock"})

    def test_method_override_dispatch(self) -> None:
        import ast

        src = textwrap.dedent(
            """
            import time

            class Base:
                def run(self):
                    return self.hook()

                def hook(self):
                    return 0

            class Derived(Base):
                def hook(self):
                    return time.time()
            """
        )
        s = build_module_summary(FileContext("m.py", src, ast.parse(src)))
        graph = build_call_graph([s])
        callees = {c for _, c in graph.resolved["m.py::Base.run"]}
        # dynamic dispatch: both the inherited and the overriding hook
        assert callees == {"m.py::Base.hook", "m.py::Derived.hook"}
        effects = propagate_effects(graph)
        assert "wall-clock" in effects["m.py::Base.run"]

    def test_registry_indirection(self) -> None:
        import ast

        src = textwrap.dedent(
            """
            import time

            _BUILDERS = {}

            def register(scheme):
                def deco(fn):
                    _BUILDERS[scheme] = fn
                    return fn
                return deco

            @register("clocky")
            def _build_clocky(cfg):
                return time.time()

            def from_config(cfg):
                return _BUILDERS[cfg["scheme"]](cfg)
            """
        )
        s = build_module_summary(FileContext("registry.py", src, ast.parse(src)))
        assert s.registered_builders == ("_build_clocky",)
        graph = build_call_graph([s])
        callees = {c for _, c in graph.resolved["registry.py::from_config"]}
        assert "registry.py::_build_clocky" in callees
        effects = propagate_effects(graph)
        assert "wall-clock" in effects["registry.py::from_config"]


# ----------------------------------------------------------------------
# effect seeds
# ----------------------------------------------------------------------
class TestEffectSeeds:
    def test_wall_clock_and_rng_seeds(self) -> None:
        s = summary_of(
            """
            import time, os

            def f():
                return time.monotonic() + len(os.urandom(4))
            """
        )
        effects = {seed.effect for seed in s.functions["f"].seeds}
        assert effects == {"wall-clock", "rng"}

    def test_seeded_rng_is_pure(self) -> None:
        s = summary_of(
            """
            import random
            from numpy.random import default_rng

            def f(seed):
                return random.Random(seed).random() + default_rng(seed).random()
            """
        )
        assert s.functions["f"].seeds == ()

    def test_filesystem_seeds(self) -> None:
        s = summary_of(
            """
            import os

            def f(path):
                path.write_text("x")
                os.replace("a", "b")
            """
        )
        assert {seed.effect for seed in s.functions["f"].seeds} == {"filesystem"}

    def test_hash_order_seed_and_sorted_sanction(self) -> None:
        s = summary_of(
            """
            def dirty(pool: set):
                return [x for x in pool]

            def clean(pool: set):
                return [x for x in sorted(pool)]
            """
        )
        assert {seed.effect for seed in s.functions["dirty"].seeds} == {"hash-order"}
        assert s.functions["clean"].seeds == ()

    def test_global_mutation_seed(self) -> None:
        s = summary_of(
            """
            _N = 0

            def bump():
                global _N
                _N += 1
            """
        )
        assert {seed.effect for seed in s.functions["bump"].seeds} == {
            "global-mutation"
        }

    def test_suppressed_seed_does_not_propagate(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "util/clock.py": """
                    import time

                    def deadline():
                        # repro-lint: disable=RPR002 -- executor deadline, not sim state
                        return time.monotonic()
                """,
                "sim/loop.py": """
                    from util.clock import deadline

                    def step():
                        return deadline()
                """,
            },
        )
        report = lint(tmp_path, select=["RPR007"])
        assert report.active == []


# ----------------------------------------------------------------------
# RPR007 -- transitive nondeterminism taint
# ----------------------------------------------------------------------
class TestRPR007:
    THREE_FRAMES = {
        "core/sched.py": """
            from analysis.stats import summarise

            def decide(queue):
                return summarise(queue)
        """,
        "analysis/stats.py": """
            from analysis.clock import stamp

            def summarise(queue):
                return (len(queue), stamp())
        """,
        "analysis/clock.py": """
            import time

            def stamp():
                return time.time()
        """,
    }

    def test_taint_through_three_frames(self, tmp_path: Path) -> None:
        write_tree(tmp_path, self.THREE_FRAMES)
        report = lint(tmp_path, select=["RPR007"])
        assert [f.rule for f in report.active] == ["RPR007"]
        f = report.active[0]
        # flagged at the perimeter crossing, inside the decision path
        assert f.path == "core/sched.py"
        assert f.symbol == "decide"
        assert "time.time()" in f.message
        assert "summarise -> stamp" in f.message

    def test_sorted_fix_goes_quiet(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "core/sched.py": """
                    from analysis.stats import summarise

                    def decide(queue):
                        return summarise(queue)
                """,
                "analysis/stats.py": """
                    def summarise(queue):
                        return sorted(queue)
                """,
            },
        )
        assert lint(tmp_path, select=["RPR007"]).active == []

    def test_hash_order_taint(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "schedulers/pick.py": """
                    from util.sets import first

                    def pick(jobs):
                        return first(jobs)
                """,
                "util/sets.py": """
                    def first(jobs: set):
                        for j in jobs:
                            return j
                """,
            },
        )
        report = lint(tmp_path, select=["RPR007"])
        assert [f.rule for f in report.active] == ["RPR007"]
        assert "hash-order" in report.active[0].message

    def test_patrolled_callee_is_not_double_flagged(self, tmp_path: Path) -> None:
        # the tainted callee lives in sim/ -- itself patrolled, so the
        # caller does not repeat its finding (RPR002 owns the seed site)
        write_tree(
            tmp_path,
            {
                "sim/outer.py": """
                    from sim.inner import now

                    def advance():
                        return now()
                """,
                "sim/inner.py": """
                    import time

                    def now():
                        return time.time()
                """,
            },
        )
        assert lint(tmp_path, select=["RPR007"]).active == []

    def test_tracer_methods_are_patrolled(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "obs/tracing.py": """
                    from util.ids import fresh_id

                    class EventTracer:
                        def emit(self, event):
                            return (fresh_id(), event)
                """,
                "util/ids.py": """
                    import uuid

                    def fresh_id():
                        return uuid.uuid4()
                """,
            },
        )
        report = lint(tmp_path, select=["RPR007"])
        assert [f.symbol for f in report.active] == ["EventTracer.emit"]


# ----------------------------------------------------------------------
# RPR008 -- exception-flow audit
# ----------------------------------------------------------------------
class TestRPR008:
    def run_rule(self, tmp_path: Path, source: str) -> list[str]:
        write_tree(tmp_path, {"experiments/worker.py": source})
        return [f.rule for f in lint(tmp_path, select=["RPR008"]).active]

    def test_silent_swallow_fires(self, tmp_path: Path) -> None:
        assert self.run_rule(
            tmp_path,
            """
            def attempt(task):
                try:
                    return task()
                except Exception:
                    return None
            """,
        ) == ["RPR008"]

    def test_bare_except_fires(self, tmp_path: Path) -> None:
        assert self.run_rule(
            tmp_path,
            """
            def attempt(task):
                try:
                    return task()
                except:
                    pass
            """,
        ) == ["RPR008"]

    def test_reraise_is_sanctioned(self, tmp_path: Path) -> None:
        assert (
            self.run_rule(
                tmp_path,
                """
                def attempt(task):
                    try:
                        return task()
                    except Exception as exc:
                        raise RuntimeError("cell failed") from exc
                """,
            )
            == []
        )

    def test_counter_increment_is_sanctioned(self, tmp_path: Path) -> None:
        assert (
            self.run_rule(
                tmp_path,
                """
                def attempt(self, task):
                    try:
                        return task()
                    except Exception:
                        self.outcome.counters.retries += 1
                        return None
                """,
            )
            == []
        )

    def test_quarantine_is_sanctioned(self, tmp_path: Path) -> None:
        assert (
            self.run_rule(
                tmp_path,
                """
                class EntryCache:
                    def get(self, path):
                        try:
                            return path.read_bytes()
                        except Exception:
                            self._quarantine(path)
                            return None

                    def _quarantine(self, path):
                        path.rename(str(path) + ".corrupt")
                """,
            )
            == []
        )

    def test_transitive_sanction_through_helper(self, tmp_path: Path) -> None:
        # the handler delegates to a helper that raises -- the PR-5
        # run_serial/_charge_failed_attempt shape
        assert (
            self.run_rule(
                tmp_path,
                """
                class Runner:
                    def attempt(self, task):
                        try:
                            return task()
                        except Exception as exc:
                            self._charge(exc)

                    def _charge(self, exc):
                        if self.retries_left == 0:
                            raise RuntimeError("exhausted") from exc
                        self.outcome.counters.retries += 1
                """,
            )
            == []
        )

    def test_narrowed_tuple_is_exempt(self, tmp_path: Path) -> None:
        assert (
            self.run_rule(
                tmp_path,
                """
                def attempt(task):
                    try:
                        return task()
                    except (OSError, ValueError):
                        return None
                """,
            )
            == []
        )

    def test_live_triage_sites_stay_narrow(self) -> None:
        """The three ISSUE-8 triage sites must not regress to broad."""
        report = lint_paths(
            [
                REPO_ROOT / "src/repro/cli.py",
                REPO_ROOT / "src/repro/experiments/cache.py",
                REPO_ROOT / "src/repro/experiments/parallel.py",
            ],
            select=["RPR008"],
        )
        assert report.active == []


# ----------------------------------------------------------------------
# RPR009 -- effect-contract drift
# ----------------------------------------------------------------------
class TestRPR009:
    def test_config_acquiring_filesystem_fires(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "schedulers/bad.py": """
                    from util.disk import snapshot

                    class DriftingScheduler:
                        scheme_id = "drift"

                        def config(self):
                            return {"scheme": self.scheme_id, "snap": snapshot()}
                """,
                "util/disk.py": """
                    def snapshot():
                        with open("/tmp/state") as fh:
                            return fh.read()
                """,
            },
        )
        report = lint(tmp_path, select=["RPR009"])
        assert [f.rule for f in report.active] == ["RPR009"]
        f = report.active[0]
        assert f.symbol == "DriftingScheduler.config"
        assert "filesystem" in f.message

    def test_pure_config_is_quiet(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "schedulers/good.py": """
                    class SteadyScheduler:
                        scheme_id = "steady"

                        def config(self):
                            return {"scheme": self.scheme_id, "k": self.k}
                """,
            },
        )
        assert lint(tmp_path, select=["RPR009"]).active == []

    def test_fingerprint_function_with_rng_fires(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "cachemod.py": """
                    import uuid

                    def cell_fingerprint(cfg):
                        return f"{cfg}-{uuid.uuid4()}"
                """,
            },
        )
        report = lint(tmp_path, select=["RPR009"])
        assert [f.symbol for f in report.active] == ["cell_fingerprint"]

    def test_pipeline_stage_config_is_contract(self, tmp_path: Path) -> None:
        write_tree(
            tmp_path,
            {
                "workload/stages.py": """
                    import time

                    class LoadScaleStage:
                        def config(self):
                            return {"stage": "scale", "at": time.time()}
                """,
            },
        )
        report = lint(tmp_path, select=["RPR009"])
        assert [f.symbol for f in report.active] == ["LoadScaleStage.config"]


# ----------------------------------------------------------------------
# sanction closure unit coverage
# ----------------------------------------------------------------------
class TestSanctionClosure:
    def test_closure_reaches_through_chain(self) -> None:
        import ast

        src = textwrap.dedent(
            """
            def a():
                b()

            def b():
                c()

            def c():
                raise RuntimeError("boom")

            def idle():
                return 1
            """
        )
        s = build_module_summary(FileContext("m.py", src, ast.parse(src)))
        graph = build_call_graph([s])
        closure = sanction_closure(graph)
        assert {"m.py::a", "m.py::b", "m.py::c"} <= closure
        assert "m.py::idle" not in closure


# ----------------------------------------------------------------------
# summary cache
# ----------------------------------------------------------------------
FIXTURE_TREE = {
    "core/sched.py": """
        from analysis.stats import summarise

        def decide(queue):
            return summarise(queue)
    """,
    "analysis/stats.py": """
        from analysis.clock import stamp

        def summarise(queue):
            return (len(queue), stamp())
    """,
    "analysis/clock.py": """
        import time

        def stamp():
            return time.time()
    """,
    "experiments/worker.py": """
        def attempt(task):
            try:
                return task()
            except Exception:
                return None
    """,
}


class TestSummaryCache:
    def test_warm_run_reanalyses_nothing(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        cache_dir = tmp_path / "cache"
        cold = lint(root, summary_cache=cache_dir)
        assert (cold.analyzed, cold.summary_hits) == (len(FIXTURE_TREE), 0)
        warm = lint(root, summary_cache=cache_dir)
        assert (warm.analyzed, warm.summary_hits) == (0, len(FIXTURE_TREE))

    def test_only_changed_module_reanalysed(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        cache_dir = tmp_path / "cache"
        lint(root, summary_cache=cache_dir)
        target = root / "analysis" / "clock.py"
        target.write_text(target.read_text() + "\n# changed\n")
        touched = lint(root, summary_cache=cache_dir)
        assert (touched.analyzed, touched.summary_hits) == (1, len(FIXTURE_TREE) - 1)

    def test_warm_and_cold_reports_byte_identical(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        cache_dir = tmp_path / "cache"
        cold = lint(root, summary_cache=cache_dir)
        warm = lint(root, summary_cache=cache_dir)
        nocache = lint(root)
        assert render_human(cold) == render_human(warm) == render_human(nocache)
        assert (
            render_sarif(cold, uri_base="src")
            == render_sarif(warm, uri_base="src")
            == render_sarif(nocache, uri_base="src")
        )

    def test_select_bypasses_cache(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        cache_dir = tmp_path / "cache"
        lint(root, summary_cache=cache_dir, select=["RPR001"])
        # nothing was stored: the next full run is entirely cold
        full = lint(root, summary_cache=cache_dir)
        assert full.summary_hits == 0

    def test_corrupt_entry_quarantined_and_reanalysed(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        cache = SummaryCache(tmp_path / "cache")
        lint(root, summary_cache=cache)
        source = (root / "core" / "sched.py").read_text(encoding="utf-8")
        key = entry_key("core/sched.py", source)
        victim = cache._path(key)
        victim.write_bytes(b"not a pickle")
        probe = SummaryCache(tmp_path / "cache")
        report = lint(root, summary_cache=probe)
        assert report.analyzed == 1
        assert probe.corrupt == 1
        assert victim.with_name(victim.name + ".corrupt").exists()
        assert render_human(report) == render_human(lint(root))

    def test_analyzer_fingerprint_keys_the_entry(self) -> None:
        # same source, same relpath -> same key; the analyser hash is a
        # stable prefix ingredient (editing any lint module changes it,
        # which is exercised implicitly by every PR touching the linter)
        assert entry_key("a.py", "x = 1\n") == entry_key("a.py", "x = 1\n")
        assert entry_key("a.py", "x = 1\n") != entry_key("b.py", "x = 1\n")
        assert len(analyzer_fingerprint()) == 64

    def test_cached_payload_is_a_file_result(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        cache = SummaryCache(tmp_path / "cache")
        lint(root, summary_cache=cache)
        source = (root / "core" / "sched.py").read_text(encoding="utf-8")
        payload = cache._path(entry_key("core/sched.py", source))
        with payload.open("rb") as fh:
            result = pickle.load(fh)
        assert result.relpath == "core/sched.py"
        assert result.summary is not None
        assert "decide" in result.summary.functions


# ----------------------------------------------------------------------
# stale-suppression audit
# ----------------------------------------------------------------------
class TestUnusedSuppressions:
    TREE = {
        "core/mix.py": """
            import time

            def stale():
                # repro-lint: disable=RPR001 -- nothing iterates a set here
                return 1

            def live():
                return time.time()  # repro-lint: disable=RPR002 -- fixture clock
        """,
    }

    def test_stale_directive_flagged_when_asked(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path, self.TREE)
        report = lint(root, report_unused_suppressions=True)
        assert [f.rule for f in report.active] == ["RPR000"]
        f = report.active[0]
        assert "unused suppression" in f.message and "RPR001" in f.message
        assert f.line == 5

    def test_audit_off_by_default(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path, self.TREE)
        assert lint(root).active == []

    def test_seed_suppression_counts_as_used(self, tmp_path: Path) -> None:
        # the directive fires only through taint-seed exclusion (the
        # call sits outside any per-file RPR002 finding's reach because
        # we select RPR007 paths), yet it must not be reported stale
        root = write_tree(
            tmp_path,
            {
                "util/clock.py": """
                    import time

                    def deadline():
                        # repro-lint: disable=RPR002 -- executor deadline
                        return time.monotonic()
                """,
            },
        )
        report = lint(root, report_unused_suppressions=True)
        assert report.active == []


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
class TestSarif:
    def test_document_shape(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        doc = json.loads(render_sarif(lint(root), uri_base="src"))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"RPR007", "RPR008", "RPR009"} <= set(rule_ids)
        assert run["results"], "fixture tree must produce findings"
        for res in run["results"]:
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].startswith("src/")
            assert loc["region"]["startLine"] >= 1
            assert res["partialFingerprints"]["reproLint/v1"]

    def test_baselined_findings_carry_suppressions(self, tmp_path: Path) -> None:
        from repro.lint.baseline import Baseline

        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        raw = lint(root)
        baseline = Baseline(path=tmp_path / "baseline.json")
        baseline.absorb(raw.active)
        for entry in baseline.entries.values():
            entry["justification"] = "accepted for the fixture"
        report = lint(root, baseline=baseline)
        doc = json.loads(render_sarif(report, uri_base="src"))
        results = doc["runs"][0]["results"]
        assert results and all(
            r["suppressions"] == [{"kind": "external"}] for r in results
        )


# ----------------------------------------------------------------------
# determinism: worker counts and hash seeds
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_equals_serial(self, tmp_path: Path) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        serial = lint(root, jobs=1)
        parallel = lint(root, jobs=3)
        assert render_human(serial) == render_human(parallel)
        assert render_sarif(serial, uri_base="src") == render_sarif(
            parallel, uri_base="src"
        )

    @pytest.mark.parametrize("fmt", ["human", "sarif"])
    def test_output_invariant_across_hash_seeds_and_jobs(
        self, tmp_path: Path, fmt: str
    ) -> None:
        root = write_tree(tmp_path / "src", FIXTURE_TREE)
        outputs = set()
        for seed, jobs in (("0", "1"), ("1", "2"), ("4242", "3")):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.lint.cli",
                    "--no-baseline",
                    "--jobs",
                    jobs,
                    "--format",
                    fmt,
                    str(root),
                ],
                capture_output=True,
                text=True,
                env=env,
                cwd=tmp_path,
            )
            assert proc.returncode == 1, proc.stderr  # fixture has findings
            outputs.add(proc.stdout)
        assert len(outputs) == 1, "lint output varies with hash seed / workers"

"""SWF parsing, writing and job conversion."""

from __future__ import annotations

import io

import pytest

from repro.workload.swf import (
    SWFRecord,
    iter_swf,
    jobs_from_swf_records,
    jobs_to_swf_records,
    read_swf,
    read_swf_header,
    write_swf,
)

GOOD_LINE = "1 0 10 3600 16 -1 -1 16 7200 -1 1 5 2 -1 1 -1 -1 -1"


def test_parse_good_line():
    rec = SWFRecord.from_line(GOOD_LINE)
    assert rec.job_number == 1
    assert rec.submit_time == 0.0
    assert rec.run_time == 3600.0
    assert rec.requested_procs == 16
    assert rec.requested_time == 7200.0
    assert rec.user_id == 5


def test_parse_rejects_wrong_field_count():
    with pytest.raises(ValueError, match="fields"):
        SWFRecord.from_line("1 2 3")


def test_parse_rejects_nonnumeric():
    bad = GOOD_LINE.replace("3600", "xyz")
    with pytest.raises(ValueError):
        SWFRecord.from_line(bad)


def test_iter_swf_skips_comments_and_blanks():
    stream = io.StringIO(f"; UnixStartTime: 0\n\n{GOOD_LINE}\n;\n{GOOD_LINE}\n")
    records = list(iter_swf(stream))
    assert len(records) == 2


def test_iter_swf_reports_line_numbers():
    stream = io.StringIO(f"{GOOD_LINE}\nbroken line here\n")
    with pytest.raises(ValueError, match="line 2"):
        list(iter_swf(stream))


def test_round_trip_through_file(tmp_path):
    rec = SWFRecord.from_line(GOOD_LINE)
    path = tmp_path / "trace.swf"
    n = write_swf(path, [rec, rec], header={"MaxNodes": "128"})
    assert n == 2
    back = read_swf(path)
    assert len(back) == 2
    assert back[0] == rec
    assert read_swf_header(path) == {"MaxNodes": "128"}


def test_to_line_is_parseable():
    rec = SWFRecord.from_line(GOOD_LINE)
    assert SWFRecord.from_line(rec.to_line()) == rec


# ----------------------------------------------------------------------
# conversion to Jobs
# ----------------------------------------------------------------------
def _rec(
    job=1, submit=0.0, run=100.0, req_procs=4, req_time=200.0, alloc=4, mem_kb=-1.0
) -> SWFRecord:
    return SWFRecord(
        job_number=job,
        submit_time=submit,
        wait_time=-1.0,
        run_time=run,
        allocated_procs=alloc,
        avg_cpu_time=-1.0,
        used_memory_kb=-1.0,
        requested_procs=req_procs,
        requested_time=req_time,
        requested_memory_kb=mem_kb,
        status=1,
        user_id=3,
        group_id=-1,
        executable=-1,
        queue=-1,
        partition=-1,
        preceding_job=-1,
        think_time=-1.0,
    )


def test_jobs_basic_conversion():
    jobs = jobs_from_swf_records([_rec()])
    assert len(jobs) == 1
    j = jobs[0]
    assert j.run_time == 100.0
    assert j.estimate == 200.0
    assert j.procs == 4
    assert j.user == 3


def test_jobs_drop_nonpositive_runtime():
    jobs = jobs_from_swf_records([_rec(run=-1.0), _rec(job=2, run=0.0), _rec(job=3)])
    assert [j.job_id for j in jobs] == [3]


def test_jobs_drop_too_wide():
    jobs = jobs_from_swf_records([_rec(req_procs=64), _rec(job=2)], max_procs=32)
    assert [j.job_id for j in jobs] == [2]


def test_jobs_fall_back_to_allocated_procs():
    jobs = jobs_from_swf_records([_rec(req_procs=-1, alloc=8)])
    assert jobs[0].procs == 8


def test_jobs_missing_estimate_falls_back_to_runtime():
    jobs = jobs_from_swf_records([_rec(req_time=-1.0)])
    assert jobs[0].estimate == 100.0


def test_jobs_clamp_tiny_runtime():
    jobs = jobs_from_swf_records([_rec(run=0.4)], min_run_time=1.0)
    assert jobs[0].run_time == 1.0


def test_jobs_preserve_underestimates():
    """Real logs contain estimate < run time; the loader must not hide it."""
    jobs = jobs_from_swf_records([_rec(run=500.0, req_time=100.0)])
    assert jobs[0].estimate == 100.0
    assert jobs[0].run_time == 500.0


def test_jobs_rebase_to_zero():
    jobs = jobs_from_swf_records([_rec(submit=1000.0), _rec(job=2, submit=1500.0)])
    assert jobs[0].submit_time == 0.0
    assert jobs[1].submit_time == 500.0


def test_jobs_rebase_optional():
    jobs = jobs_from_swf_records([_rec(submit=1000.0)], rebase_time=False)
    assert jobs[0].submit_time == 1000.0


def test_jobs_sorted_by_submit():
    jobs = jobs_from_swf_records([_rec(job=1, submit=500.0), _rec(job=2, submit=100.0)])
    assert [j.job_id for j in jobs] == [2, 1]


def test_memory_kb_to_mb_conversion():
    jobs = jobs_from_swf_records([_rec(mem_kb=512000.0)])
    assert jobs[0].memory_mb == pytest.approx(500.0)


def test_jobs_to_swf_round_trip():
    jobs = jobs_from_swf_records([_rec()])
    recs = jobs_to_swf_records(jobs)
    back = jobs_from_swf_records(recs)
    assert back[0].run_time == jobs[0].run_time
    assert back[0].procs == jobs[0].procs
    assert back[0].estimate == jobs[0].estimate

"""SWF parsing, writing and job conversion."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.swf import (
    SWFReader,
    SWFRecord,
    format_scan_report,
    iter_swf,
    jobs_from_swf_records,
    jobs_to_swf_records,
    parse_header_directive,
    read_swf,
    read_swf_header,
    scan_swf,
    stream_jobs,
    stream_swf,
    write_swf,
    write_synthetic_swf,
)

GOOD_LINE = "1 0 10 3600 16 -1 -1 16 7200 -1 1 5 2 -1 1 -1 -1 -1"


def test_parse_good_line():
    rec = SWFRecord.from_line(GOOD_LINE)
    assert rec.job_number == 1
    assert rec.submit_time == 0.0
    assert rec.run_time == 3600.0
    assert rec.requested_procs == 16
    assert rec.requested_time == 7200.0
    assert rec.user_id == 5


def test_parse_rejects_wrong_field_count():
    with pytest.raises(ValueError, match="fields"):
        SWFRecord.from_line("1 2 3")


def test_parse_rejects_nonnumeric():
    bad = GOOD_LINE.replace("3600", "xyz")
    with pytest.raises(ValueError):
        SWFRecord.from_line(bad)


def test_iter_swf_skips_comments_and_blanks():
    stream = io.StringIO(f"; UnixStartTime: 0\n\n{GOOD_LINE}\n;\n{GOOD_LINE}\n")
    records = list(iter_swf(stream))
    assert len(records) == 2


def test_iter_swf_reports_line_numbers():
    stream = io.StringIO(f"{GOOD_LINE}\nbroken line here\n")
    with pytest.raises(ValueError, match="line 2"):
        list(iter_swf(stream))


def test_round_trip_through_file(tmp_path):
    rec = SWFRecord.from_line(GOOD_LINE)
    path = tmp_path / "trace.swf"
    n = write_swf(path, [rec, rec], header={"MaxNodes": "128"})
    assert n == 2
    back = read_swf(path)
    assert len(back) == 2
    assert back[0] == rec
    assert read_swf_header(path) == {"MaxNodes": "128"}


def test_to_line_is_parseable():
    rec = SWFRecord.from_line(GOOD_LINE)
    assert SWFRecord.from_line(rec.to_line()) == rec


# ----------------------------------------------------------------------
# conversion to Jobs
# ----------------------------------------------------------------------
def _rec(
    job=1, submit=0.0, run=100.0, req_procs=4, req_time=200.0, alloc=4, mem_kb=-1.0
) -> SWFRecord:
    return SWFRecord(
        job_number=job,
        submit_time=submit,
        wait_time=-1.0,
        run_time=run,
        allocated_procs=alloc,
        avg_cpu_time=-1.0,
        used_memory_kb=-1.0,
        requested_procs=req_procs,
        requested_time=req_time,
        requested_memory_kb=mem_kb,
        status=1,
        user_id=3,
        group_id=-1,
        executable=-1,
        queue=-1,
        partition=-1,
        preceding_job=-1,
        think_time=-1.0,
    )


def test_jobs_basic_conversion():
    jobs = jobs_from_swf_records([_rec()])
    assert len(jobs) == 1
    j = jobs[0]
    assert j.run_time == 100.0
    assert j.estimate == 200.0
    assert j.procs == 4
    assert j.user == 3


def test_jobs_drop_nonpositive_runtime():
    jobs = jobs_from_swf_records([_rec(run=-1.0), _rec(job=2, run=0.0), _rec(job=3)])
    assert [j.job_id for j in jobs] == [3]


def test_jobs_drop_too_wide():
    jobs = jobs_from_swf_records([_rec(req_procs=64), _rec(job=2)], max_procs=32)
    assert [j.job_id for j in jobs] == [2]


def test_jobs_fall_back_to_allocated_procs():
    jobs = jobs_from_swf_records([_rec(req_procs=-1, alloc=8)])
    assert jobs[0].procs == 8


def test_jobs_missing_estimate_falls_back_to_runtime():
    jobs = jobs_from_swf_records([_rec(req_time=-1.0)])
    assert jobs[0].estimate == 100.0


def test_jobs_clamp_tiny_runtime():
    jobs = jobs_from_swf_records([_rec(run=0.4)], min_run_time=1.0)
    assert jobs[0].run_time == 1.0


def test_jobs_preserve_underestimates():
    """Real logs contain estimate < run time; the loader must not hide it."""
    jobs = jobs_from_swf_records([_rec(run=500.0, req_time=100.0)])
    assert jobs[0].estimate == 100.0
    assert jobs[0].run_time == 500.0


def test_jobs_rebase_to_zero():
    jobs = jobs_from_swf_records([_rec(submit=1000.0), _rec(job=2, submit=1500.0)])
    assert jobs[0].submit_time == 0.0
    assert jobs[1].submit_time == 500.0


def test_jobs_rebase_optional():
    jobs = jobs_from_swf_records([_rec(submit=1000.0)], rebase_time=False)
    assert jobs[0].submit_time == 1000.0


def test_jobs_sorted_by_submit():
    jobs = jobs_from_swf_records([_rec(job=1, submit=500.0), _rec(job=2, submit=100.0)])
    assert [j.job_id for j in jobs] == [2, 1]


def test_memory_kb_to_mb_conversion():
    jobs = jobs_from_swf_records([_rec(mem_kb=512000.0)])
    assert jobs[0].memory_mb == pytest.approx(500.0)


def test_jobs_to_swf_round_trip():
    jobs = jobs_from_swf_records([_rec()])
    recs = jobs_to_swf_records(jobs)
    back = jobs_from_swf_records(recs)
    assert back[0].run_time == jobs[0].run_time
    assert back[0].procs == jobs[0].procs
    assert back[0].estimate == jobs[0].estimate


# ----------------------------------------------------------------------
# streaming reader
# ----------------------------------------------------------------------
def _swf_file(tmp_path, lines, header=None):
    path = tmp_path / "log.swf"
    text = ""
    for key, value in (header or {}).items():
        text += f"; {key}: {value}\n"
    text += "".join(line + "\n" for line in lines)
    path.write_text(text)
    return path


def test_reader_header_and_records(tmp_path):
    path = _swf_file(
        tmp_path,
        [GOOD_LINE],
        header={"Computer": "IBM SP2", "MaxProcs": "128", "UnixStartTime": "840000000"},
    )
    with SWFReader(path) as reader:
        assert reader.header.computer == "IBM SP2"
        assert reader.header.max_procs == 128
        assert reader.header.unix_start_time == 840000000
        assert reader.header.machine_procs() == 128
        records = list(reader)
    assert len(records) == 1
    assert records[0] == SWFRecord.from_line(GOOD_LINE)


def test_reader_machine_procs_falls_back_to_max_nodes(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE], header={"MaxNodes": "64"})
    with SWFReader(path) as reader:
        assert reader.header.max_procs is None
        assert reader.header.machine_procs() == 64


def test_reader_header_tolerates_garbage_values(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE], header={"MaxProcs": "lots"})
    with SWFReader(path) as reader:
        assert reader.header.max_procs is None
        assert reader.header.directives["MaxProcs"] == "lots"


def test_reader_is_single_pass(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE])
    with SWFReader(path) as reader:
        assert len(list(reader)) == 1
        with pytest.raises(RuntimeError, match="single-pass"):
            list(reader)


def test_reader_malformed_raise_names_line(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE, "this is not swf"])
    with SWFReader(path) as reader:
        with pytest.raises(ValueError, match="line 2"):
            list(reader)


def test_reader_malformed_skip_counts(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE, "broken", GOOD_LINE])
    with SWFReader(path, on_malformed="skip") as reader:
        records = list(reader)
    assert len(records) == 2
    assert reader.malformed_lines == 1
    assert reader.records_read == 2


def test_reader_rejects_bad_policy(tmp_path):
    with pytest.raises(ValueError, match="on_malformed"):
        SWFReader("whatever.swf", on_malformed="explode")


def test_reader_iter_chunks(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE] * 5)
    with SWFReader(path) as reader:
        chunks = list(reader.iter_chunks(2))
    assert [len(c) for c in chunks] == [2, 2, 1]


def test_stream_swf_matches_read_swf(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE] * 3, header={"MaxProcs": "128"})
    assert list(stream_swf(path)) == read_swf(path)


def test_parse_header_directive():
    assert parse_header_directive("; MaxProcs: 128") == ("MaxProcs", "128")
    assert parse_header_directive(";Computer: SP2 ") == ("Computer", "SP2")
    assert parse_header_directive("; just a comment") is None
    assert parse_header_directive("1 2 3") is None


# ----------------------------------------------------------------------
# validation scan
# ----------------------------------------------------------------------
def test_scan_clean_log(tmp_path):
    path = _swf_file(tmp_path, [GOOD_LINE], header={"MaxProcs": "128"})
    header, report = scan_swf(path)
    assert header.max_procs == 128
    assert report.records == 1
    assert report.clean


def test_scan_counts_anomalies_with_examples(tmp_path):
    wide = _rec(job=7, req_procs=999).to_line()
    backwards = _rec(job=8, submit=-50.0).to_line()
    path = _swf_file(
        tmp_path,
        [GOOD_LINE, wide, backwards, "garbage"],
        header={"MaxProcs": "128"},
    )
    _, report = scan_swf(path)
    assert not report.clean
    assert report.too_wide == 1
    assert report.out_of_order_submits == 1
    assert report.malformed_lines == 1
    assert report.examples["too_wide"] == [7]
    assert report.examples["out_of_order_submits"] == [8]
    assert "out-of-order" in format_scan_report(report)


def test_scan_without_machine_size_skips_width_check(tmp_path):
    path = _swf_file(tmp_path, [_rec(req_procs=999).to_line()])
    _, report = scan_swf(path)
    assert report.too_wide == 0
    assert report.machine_procs is None


# ----------------------------------------------------------------------
# streaming job conversion
# ----------------------------------------------------------------------
def test_stream_jobs_matches_eager():
    records = [
        _rec(job=1, submit=0.0),
        _rec(job=2, submit=10.0, run=-1.0),       # dropped: bad run time
        _rec(job=3, submit=20.0, req_procs=400),  # dropped: too wide
        _rec(job=4, submit=30.0, req_time=-1.0),  # estimate falls back
    ]
    eager = jobs_from_swf_records(records, max_procs=128)
    streamed = list(stream_jobs(iter(records), max_procs=128))
    assert [(j.job_id, j.submit_time, j.run_time, j.estimate, j.procs) for j in eager] \
        == [(j.job_id, j.submit_time, j.run_time, j.estimate, j.procs) for j in streamed]


def test_stream_jobs_requires_sorted():
    records = [_rec(job=1, submit=100.0), _rec(job=2, submit=50.0)]
    with pytest.raises(ValueError, match="submit-sorted"):
        list(stream_jobs(iter(records)))
    unsorted = list(
        stream_jobs(iter(records), require_sorted=False, rebase_time=False)
    )
    assert [j.job_id for j in unsorted] == [1, 2]


def test_stream_jobs_drop_interactive():
    records = [_rec(job=1), _rec(job=2)]
    interactive = SWFRecord(**{**records[1].__dict__, "queue": 0})
    kept = list(stream_jobs(iter([records[0], interactive]), drop_interactive=True))
    assert [j.job_id for j in kept] == [1]


def test_stream_jobs_status_filter():
    completed = _rec(job=1)
    cancelled = SWFRecord(**{**_rec(job=2, submit=1.0).__dict__, "status": 5})
    unrecorded = SWFRecord(**{**_rec(job=3, submit=2.0).__dict__, "status": -1})
    kept = list(
        stream_jobs(
            iter([completed, cancelled, unrecorded]),
            keep_statuses=frozenset({1}),
        )
    )
    assert [j.job_id for j in kept] == [1, 3]  # -1 (unrecorded) always kept


def test_write_synthetic_swf_streams_cleanly(tmp_path):
    path = tmp_path / "synth.swf"
    write_synthetic_swf(path, n_jobs=200, n_procs=128)
    header, report = scan_swf(path)
    assert header.max_procs == 128
    assert report.records == 200
    assert report.clean
    jobs = list(stream_jobs(stream_swf(path), max_procs=128))
    assert len(jobs) == 200


# ----------------------------------------------------------------------
# property: write -> stream-read round trip
# ----------------------------------------------------------------------
@st.composite
def swf_records(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    submits = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10**6), min_size=n, max_size=n
            )
        )
    )
    records = []
    for i, submit in enumerate(submits, start=1):
        records.append(
            SWFRecord(
                job_number=i,
                submit_time=float(submit),
                wait_time=float(draw(st.integers(min_value=-1, max_value=10**5))),
                run_time=float(draw(st.integers(min_value=-1, max_value=10**5))),
                allocated_procs=draw(st.integers(min_value=-1, max_value=512)),
                avg_cpu_time=-1.0,
                used_memory_kb=-1.0,
                requested_procs=draw(st.integers(min_value=-1, max_value=512)),
                requested_time=float(draw(st.integers(min_value=-1, max_value=10**5))),
                requested_memory_kb=-1.0,
                status=draw(st.sampled_from([-1, 0, 1, 5])),
                user_id=draw(st.integers(min_value=-1, max_value=100)),
                group_id=-1,
                executable=-1,
                queue=draw(st.sampled_from([-1, 0, 1, 7])),
                partition=-1,
                preceding_job=-1,
                think_time=-1.0,
            )
        )
    return records


@given(records=swf_records())
@settings(max_examples=40, deadline=None)
def test_write_then_stream_read_round_trip(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("swf-rt") / "rt.swf"
    write_swf(path, records, header={"MaxProcs": "512"})
    back = list(stream_swf(path))
    assert back == records
    # and the streaming job conversion agrees with the eager one
    eager = jobs_from_swf_records(records, max_procs=512)
    streamed = list(stream_jobs(iter(records), max_procs=512))
    assert [(j.job_id, j.submit_time, j.run_time, j.estimate, j.procs, j.user)
            for j in eager] == \
           [(j.job_id, j.submit_time, j.run_time, j.estimate, j.procs, j.user)
            for j in streamed]

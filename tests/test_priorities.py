"""Suspension priorities and the preemption criteria."""

from __future__ import annotations

import pytest

from repro.core.priorities import (
    GOLDEN_RATIO,
    PreemptionCriteria,
    instantaneous_priority,
    max_suspensions_threshold,
    suspension_priority,
)
from tests.conftest import make_job


def test_suspension_priority_is_xfactor():
    j = make_job(run=100.0, estimate=100.0)
    j.mark_submitted(0.0)
    assert suspension_priority(j, 50.0) == pytest.approx(1.5)


def test_instantaneous_priority_matches_definition():
    j = make_job(run=1000.0)
    j.mark_submitted(0.0)
    j.mark_started(100.0, frozenset({0}))
    assert instantaneous_priority(j, 300.0) == pytest.approx((100 + 200) / 200)


def test_threshold_closed_form():
    assert max_suspensions_threshold(0) == pytest.approx(2.0)
    assert max_suspensions_threshold(1) == pytest.approx(2.0**0.5)
    assert max_suspensions_threshold(2) == pytest.approx(2.0 ** (1 / 3))


def test_threshold_monotone_decreasing_to_one():
    values = [max_suspensions_threshold(n) for n in range(8)]
    assert values == sorted(values, reverse=True)
    assert values[-1] > 1.0


def test_threshold_rejects_negative():
    with pytest.raises(ValueError):
        max_suspensions_threshold(-1)


def test_golden_ratio_constant():
    assert GOLDEN_RATIO == pytest.approx(1.6180339887, abs=1e-9)


# ----------------------------------------------------------------------
# PreemptionCriteria
# ----------------------------------------------------------------------
def test_criteria_rejects_sf_below_one():
    with pytest.raises(ValueError):
        PreemptionCriteria(suspension_factor=0.9)


def test_priority_threshold():
    c = PreemptionCriteria(suspension_factor=2.0)
    assert c.priority_allows(2.0, 1.0)
    assert c.priority_allows(4.0, 2.0)
    assert not c.priority_allows(1.9, 1.0)


def test_width_rule_blocks_narrow_suspending_wide():
    c = PreemptionCriteria(width_rule=True)
    # victim may be at most twice the idle job's width
    assert c.width_allows(idle_procs=4, victim_procs=8, reentry=False)
    assert not c.width_allows(idle_procs=4, victim_procs=9, reentry=False)
    assert not c.width_allows(idle_procs=1, victim_procs=300, reentry=False)


def test_width_rule_waived_on_reentry():
    c = PreemptionCriteria(width_rule=True)
    assert c.width_allows(idle_procs=1, victim_procs=300, reentry=True)


def test_width_rule_can_be_disabled():
    c = PreemptionCriteria(width_rule=False)
    assert c.width_allows(idle_procs=1, victim_procs=300, reentry=False)


def test_allows_combines_both_conditions():
    c = PreemptionCriteria(suspension_factor=2.0, width_rule=True)
    idle = make_job(job_id=1, run=60.0, procs=4)
    victim = make_job(job_id=2, run=3600.0, procs=6)
    idle.mark_submitted(0.0)
    victim.mark_submitted(0.0)
    victim.mark_started(0.0, frozenset(range(6)))
    # victim priority frozen at 1; idle needs xfactor >= 2: wait 60s
    assert not c.allows(idle, victim, now=30.0, reentry=False)
    assert c.allows(idle, victim, now=120.0, reentry=False)


def test_allows_respects_width_rule():
    c = PreemptionCriteria(suspension_factor=1.0, width_rule=True)
    idle = make_job(job_id=1, run=60.0, procs=1)
    victim = make_job(job_id=2, run=3600.0, procs=10)
    idle.mark_submitted(0.0)
    victim.mark_submitted(0.0)
    victim.mark_started(0.0, frozenset(range(10)))
    assert not c.allows(idle, victim, now=10_000.0, reentry=False)
    assert c.allows(idle, victim, now=10_000.0, reentry=True)

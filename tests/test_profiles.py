"""Availability profile: claims, queries and anchor search."""

from __future__ import annotations

import pytest

from repro.schedulers.profiles import AvailabilityProfile, ProfileError


def test_initial_profile_is_flat_capacity():
    p = AvailabilityProfile(16, origin=100.0)
    assert p.free_at(100.0) == 16
    assert p.free_at(10_000.0) == 16


def test_query_before_origin_rejected():
    p = AvailabilityProfile(16, origin=100.0)
    with pytest.raises(ValueError):
        p.free_at(99.0)


def test_claim_reduces_window_only():
    p = AvailabilityProfile(10, origin=0.0)
    p.claim(10.0, 5.0, 4)
    assert p.free_at(5.0) == 10
    assert p.free_at(10.0) == 6
    assert p.free_at(14.999) == 6
    assert p.free_at(15.0) == 10


def test_claims_stack():
    p = AvailabilityProfile(10, origin=0.0)
    p.claim(0.0, 10.0, 3)
    p.claim(5.0, 10.0, 3)
    assert p.free_at(0.0) == 7
    assert p.free_at(5.0) == 4
    assert p.free_at(12.0) == 7
    assert p.free_at(15.0) == 10


def test_claim_underflow_raises():
    p = AvailabilityProfile(4, origin=0.0)
    p.claim(0.0, 10.0, 3)
    with pytest.raises(ProfileError, match="underflow"):
        p.claim(5.0, 2.0, 2)


def test_claim_validates_arguments():
    p = AvailabilityProfile(4, origin=10.0)
    with pytest.raises(ValueError):
        p.claim(10.0, 5.0, 0)
    with pytest.raises(ValueError):
        p.claim(10.0, 0.0, 1)
    with pytest.raises(ValueError):
        p.claim(5.0, 5.0, 1)  # before origin


def test_min_free_over_window():
    p = AvailabilityProfile(10, origin=0.0)
    p.claim(5.0, 5.0, 6)
    assert p.min_free(0.0, 5.0) == 10
    assert p.min_free(0.0, 6.0) == 4
    assert p.min_free(10.0, 20.0) == 10


def test_fits_matches_min_free():
    p = AvailabilityProfile(10, origin=0.0)
    p.claim(5.0, 5.0, 6)
    assert p.fits(0.0, 5.0, 10)
    assert not p.fits(0.0, 6.0, 5)
    assert p.fits(10.0, 100.0, 10)


def test_find_anchor_immediate_when_free():
    p = AvailabilityProfile(8, origin=0.0)
    assert p.find_anchor(100.0, 8) == 0.0


def test_find_anchor_after_release():
    p = AvailabilityProfile(8, origin=0.0)
    p.claim(0.0, 50.0, 6)  # 2 free until t=50
    assert p.find_anchor(10.0, 2) == 0.0
    assert p.find_anchor(10.0, 4) == 50.0


def test_find_anchor_fits_into_hole():
    p = AvailabilityProfile(8, origin=0.0)
    p.claim(0.0, 10.0, 8)  # full until 10
    p.claim(20.0, 10.0, 8)  # full again 20-30
    assert p.find_anchor(10.0, 4) == 10.0  # exactly the hole
    assert p.find_anchor(11.0, 4) == 30.0  # too long for the hole


def test_find_anchor_respects_earliest():
    p = AvailabilityProfile(8, origin=0.0)
    assert p.find_anchor(10.0, 4, earliest=42.0) == 42.0


def test_find_anchor_impossible_count():
    p = AvailabilityProfile(8, origin=0.0)
    with pytest.raises(ProfileError, match="never"):
        p.find_anchor(10.0, 9)


def test_claim_running_clamps_past_estimates():
    """A running job past its estimate still occupies processors now."""
    p = AvailabilityProfile(8, origin=100.0)
    p.claim_running(4, until=90.0)  # "expected end" in the past
    assert p.free_at(100.0) == 4


def test_anchor_then_claim_round_trip():
    p = AvailabilityProfile(8, origin=0.0)
    p.claim(0.0, 100.0, 5)
    anchor = p.find_anchor(50.0, 5)
    assert anchor == 100.0
    p.claim(anchor, 50.0, 5)
    assert p.free_at(120.0) == 3


def test_breakpoints_snapshot():
    p = AvailabilityProfile(8, origin=0.0)
    p.claim(10.0, 10.0, 2)
    assert p.breakpoints() == [(0.0, 8), (10.0, 6), (20.0, 8)]


def test_many_overlapping_claims_consistent():
    p = AvailabilityProfile(100, origin=0.0)
    for i in range(20):
        p.claim(float(i), 10.0, 2)
    # at t=9.5 all 20 overlap partially: claims alive are i in [0..9]
    assert p.free_at(9.5) == 100 - 2 * 10
    assert p.free_at(28.5) == 100 - 2  # only claim i=19 is alive
    assert p.free_at(29.0) == 100

"""Relaxed backfilling: bounded head delay."""

from __future__ import annotations

import pytest

from repro.metrics.aggregate import overall_stats
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.relaxed import RelaxedBackfillScheduler
from repro.sim.audit import audit_result
from repro.workload.job import JobState, fresh_copies
from tests.conftest import make_job, run_sim


def test_relaxation_validated():
    with pytest.raises(ValueError):
        RelaxedBackfillScheduler(relaxation=-0.1)


def test_zero_relaxation_matches_easy(sdsc_trace_small):
    from repro.workload.archive import SDSC

    easy = run_sim(
        fresh_copies(sdsc_trace_small), EasyBackfillScheduler(), n_procs=SDSC.n_procs
    )
    relaxed = run_sim(
        fresh_copies(sdsc_trace_small),
        RelaxedBackfillScheduler(relaxation=0.0),
        n_procs=SDSC.n_procs,
    )
    a = sorted((j.job_id, j.first_start_time, j.finish_time) for j in easy.jobs)
    b = sorted((j.job_id, j.first_start_time, j.finish_time) for j in relaxed.jobs)
    assert a == b


def test_positive_relaxation_admits_blocked_backfill():
    """A candidate that EASY rejects (would delay the head) is admitted
    when the delay fits the allowance."""
    jobs_spec = [
        dict(job_id=0, submit=0.0, run=100.0, procs=5),
        dict(job_id=1, submit=1.0, run=200.0, procs=8),  # head, anchor 100
        # fits the 3 free procs now but would push the head to 152;
        # EASY says no, relaxation 0.5 allows up to 100 + 100:
        dict(job_id=2, submit=2.0, run=150.0, procs=3),
    ]

    easy_jobs = [make_job(**s) for s in jobs_spec]
    run_sim(easy_jobs, EasyBackfillScheduler(), n_procs=8)
    assert easy_jobs[2].first_start_time > 2.0

    relaxed_jobs = [make_job(**s) for s in jobs_spec]
    run_sim(relaxed_jobs, RelaxedBackfillScheduler(relaxation=0.5), n_procs=8)
    assert relaxed_jobs[2].first_start_time == pytest.approx(2.0)
    # head slipped, but within 0.5 x 200 = 100 of its anchor
    assert relaxed_jobs[1].first_start_time <= 100.0 + 100.0 + 1e-6


def test_delay_beyond_allowance_rejected():
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=200.0, procs=8),  # head
        make_job(job_id=2, submit=2.0, run=5000.0, procs=3),  # way too long
    ]
    run_sim(jobs, RelaxedBackfillScheduler(relaxation=0.5), n_procs=8)
    assert jobs[2].first_start_time > 2.0
    assert jobs[1].first_start_time <= 100.0 + 100.0 + 1e-6


def test_head_never_delayed_beyond_allowance(sdsc_trace_small):
    """Global property at trace scale: audit passes and everything drains."""
    from repro.workload.archive import SDSC

    result = run_sim(
        fresh_copies(sdsc_trace_small),
        RelaxedBackfillScheduler(relaxation=0.5),
        n_procs=SDSC.n_procs,
    )
    audit_result(result, expect_preemption=False)
    assert all(j.state is JobState.FINISHED for j in result.jobs)


def test_relaxation_does_not_explode_slowdowns(sdsc_trace_small):
    from repro.workload.archive import SDSC

    easy = run_sim(
        fresh_copies(sdsc_trace_small), EasyBackfillScheduler(), n_procs=SDSC.n_procs
    )
    relaxed = run_sim(
        fresh_copies(sdsc_trace_small),
        RelaxedBackfillScheduler(relaxation=0.5),
        n_procs=SDSC.n_procs,
    )
    sd_e = overall_stats(easy.jobs).slowdown.mean
    sd_r = overall_stats(relaxed.jobs).slowdown.mean
    assert sd_r <= sd_e * 1.5  # bounded slip, bounded damage

"""The independent schedule auditor."""

from __future__ import annotations

import pytest

from repro.core.immediate_service import ImmediateServiceScheduler
from repro.core.overhead import DiskSwapOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.gang import GangScheduler
from repro.sim.audit import AuditError, audit_result
from repro.workload.job import fresh_copies
from tests.conftest import run_sim


def test_audit_passes_every_scheduler(sdsc_trace_small):
    from repro.workload.archive import SDSC

    for factory, preemptive in [
        (FCFSScheduler, False),
        (EasyBackfillScheduler, False),
        (ConservativeBackfillScheduler, False),
        (lambda: SelectiveSuspensionScheduler(2.0), None),
        (ImmediateServiceScheduler, None),
        (lambda: GangScheduler(600.0), None),
    ]:
        result = run_sim(
            fresh_copies(sdsc_trace_small), factory(), n_procs=SDSC.n_procs
        )
        audit_result(result, expect_preemption=preemptive)


def test_audit_passes_with_overhead(sdsc_trace_small):
    from repro.workload.archive import SDSC

    result = run_sim(
        fresh_copies(sdsc_trace_small),
        SelectiveSuspensionScheduler(2.0),
        n_procs=SDSC.n_procs,
        overhead_model=DiskSwapOverheadModel(),
    )
    audit_result(result)


def _clean_result():
    from tests.conftest import make_job

    job = make_job(job_id=0, submit=0.0, run=100.0, procs=2)
    return run_sim([job], FCFSScheduler(), n_procs=4)


def test_audit_detects_duplicate_jobs():
    result = _clean_result()
    result.jobs.append(result.jobs[0])
    with pytest.raises(AuditError, match="twice"):
        audit_result(result)


def test_audit_detects_area_mismatch():
    result = _clean_result()
    result.busy_proc_seconds += 50.0
    with pytest.raises(AuditError, match="conservation"):
        audit_result(result)


def test_audit_detects_makespan_mismatch():
    result = _clean_result()
    result.makespan += 10.0
    with pytest.raises(AuditError, match="makespan"):
        audit_result(result)


def test_audit_detects_suspension_miscount():
    result = _clean_result()
    result.total_suspensions = 5
    with pytest.raises(AuditError, match="disagree"):
        audit_result(result)


def test_audit_detects_time_travel():
    result = _clean_result()
    job = result.jobs[0]
    job.first_start_time = job.submit_time - 5.0
    with pytest.raises(AuditError, match="before submission"):
        audit_result(result)


def test_audit_detects_unpaid_overhead():
    result = _clean_result()
    result.jobs[0].pending_overhead = 7.0
    with pytest.raises(AuditError, match="unpaid overhead"):
        audit_result(result)


def test_audit_detects_phantom_preemption():
    result = _clean_result()
    with pytest.raises(AuditError) as err:
        result.jobs[0].suspension_count = 1
        result.total_suspensions = 1
        audit_result(result, expect_preemption=False)
    assert "non-preemptive" in str(err.value)


def test_audit_reports_multiple_violations():
    result = _clean_result()
    result.busy_proc_seconds += 1.0
    result.makespan += 1.0
    with pytest.raises(AuditError) as err:
        audit_result(result)
    assert len(err.value.violations) >= 2

"""Simulation driver: mechanism-level behaviour.

Uses a scripted scheduler so each driver feature is exercised in
isolation from any real policy.
"""

from __future__ import annotations

import pytest

from repro.cluster.machine import Cluster
from repro.core.overhead import FixedOverheadModel
from repro.schedulers.base import Scheduler
from repro.sim.driver import SchedulingSimulation
from repro.sim.engine import SimulationError
from repro.workload.job import JobState
from tests.conftest import make_job


class GreedyScheduler(Scheduler):
    """Start anything that fits, FIFO -- minimal valid policy."""

    name = "greedy"

    def on_arrival(self, job):
        self._go()

    def on_finish(self, job):
        self._go()

    def _go(self):
        for j in self.driver.queued_jobs():
            if self.driver.can_start(j):
                self.driver.start_job(j)


class SuspendAtTimer(GreedyScheduler):
    """Greedy + suspends every running job at the first timer tick."""

    name = "suspender"
    timer_interval = 50.0

    def __init__(self):
        super().__init__()
        self.fired = False

    def on_timer(self):
        if not self.fired:
            self.fired = True
            for j in list(self.driver.running_jobs()):
                self.driver.suspend_job(j)
        self._go()


def drive(jobs, scheduler, n_procs=4, overhead_model=None):
    sim = SchedulingSimulation(Cluster(n_procs), scheduler, overhead_model)
    return sim, sim.run(jobs)


# ----------------------------------------------------------------------
# basic flow
# ----------------------------------------------------------------------
def test_single_job_runs_to_completion():
    job = make_job(submit=5.0, run=100.0, procs=2)
    _, result = drive([job], GreedyScheduler())
    assert job.state is JobState.FINISHED
    assert job.first_start_time == 5.0
    assert job.finish_time == 105.0
    assert result.makespan == 105.0


def test_jobs_queue_when_machine_full():
    a = make_job(job_id=0, submit=0.0, run=100.0, procs=4)
    b = make_job(job_id=1, submit=10.0, run=50.0, procs=4)
    _, result = drive([a, b], GreedyScheduler())
    assert b.first_start_time == 100.0
    assert b.finish_time == 150.0


def test_empty_workload_rejected():
    with pytest.raises(ValueError, match="empty"):
        drive([], GreedyScheduler())


def test_non_fresh_jobs_rejected():
    job = make_job()
    job.mark_submitted(0.0)
    with pytest.raises(ValueError, match="fresh"):
        drive([job], GreedyScheduler())


def test_result_counts_and_scheduler_name():
    jobs = [make_job(job_id=i, submit=float(i), run=10.0) for i in range(5)]
    _, result = drive(jobs, GreedyScheduler())
    assert len(result.jobs) == 5
    assert result.scheduler == "greedy"
    assert result.total_suspensions == 0


def test_cluster_must_start_empty():
    cluster = Cluster(4)
    cluster.allocate(1, owner=99)
    with pytest.raises(ValueError, match="empty"):
        SchedulingSimulation(cluster, GreedyScheduler())


# ----------------------------------------------------------------------
# start_job guards
# ----------------------------------------------------------------------
def test_start_job_requires_queued():
    class BadScheduler(GreedyScheduler):
        def on_arrival(self, job):
            self.driver.start_job(job)
            self.driver.start_job(job)  # second start must blow up

    with pytest.raises(SimulationError, match="not queued"):
        drive([make_job()], BadScheduler())


def test_suspend_job_requires_running():
    class BadScheduler(GreedyScheduler):
        def on_arrival(self, job):
            self.driver.suspend_job(job)

    with pytest.raises(SimulationError, match="not running"):
        drive([make_job()], BadScheduler())


# ----------------------------------------------------------------------
# suspension mechanics
# ----------------------------------------------------------------------
def test_suspension_pauses_progress():
    # runs [0,50), suspended at 50 (timer), resumes immediately via _go,
    # finishes having accumulated exactly 100s of useful work.
    job = make_job(submit=0.0, run=100.0, procs=4)
    _, result = drive([job], SuspendAtTimer())
    assert job.suspension_count == 1
    assert job.finish_time == pytest.approx(100.0)  # resumed same instant
    assert result.total_suspensions == 1


def test_suspension_releases_processors_for_others():
    class SuspendFirstForSecond(GreedyScheduler):
        timer_interval = 10.0

        def on_timer(self):
            running = self.driver.running_jobs()
            queued = [j for j in self.driver.queued_jobs() if not j.was_suspended]
            if running and queued:
                self.driver.suspend_job(running[0])
                self.driver.start_job(queued[0])
            self._go()  # resume anything whose processors are now free

    a = make_job(job_id=0, submit=0.0, run=100.0, procs=4)
    b = make_job(job_id=1, submit=5.0, run=20.0, procs=4)
    _, _ = drive([a, b], SuspendFirstForSecond())
    assert b.first_start_time == pytest.approx(10.0)
    assert b.finish_time == pytest.approx(30.0)
    assert a.suspension_count >= 1
    assert a.state is JobState.FINISHED


def test_resume_reacquires_original_processors():
    job = make_job(submit=0.0, run=100.0, procs=3)
    sched = SuspendAtTimer()
    sim, _ = drive([job], sched, n_procs=4)
    # after completion, check the job ran both periods on the same procs:
    # suspended_procs recorded at suspend must equal the final allocation
    assert job.suspension_count == 1
    # job finished => allocated cleared; nothing double-booked en route
    sim.cluster.check_invariants()


def test_stale_finish_event_ignored():
    """A job suspended before its finish event fires must not finish early."""
    job = make_job(submit=0.0, run=60.0, procs=4)
    # timer at 50 suspends it; its original finish event (t=60) is stale.
    _, result = drive([job], SuspendAtTimer())
    assert job.finish_time == pytest.approx(60.0)
    assert job.run_time == 60.0
    assert job.suspension_count == 1


# ----------------------------------------------------------------------
# overhead accounting
# ----------------------------------------------------------------------
def test_overhead_charged_on_suspension():
    job = make_job(submit=0.0, run=100.0, procs=4)
    _, result = drive([job], SuspendAtTimer(), overhead_model=FixedOverheadModel(30.0))
    # ran [0,50), suspended, resumed at 50 with 30s overhead then 50s work
    assert job.finish_time == pytest.approx(130.0)
    assert job.total_overhead == pytest.approx(30.0)
    assert job.pending_overhead == 0.0


def test_no_overhead_without_model():
    job = make_job(submit=0.0, run=100.0, procs=4)
    _, _ = drive([job], SuspendAtTimer())
    assert job.total_overhead == 0.0


def test_overhead_paid_before_useful_progress():
    """Re-suspension during the overhead window makes zero progress."""

    class DoubleSuspend(GreedyScheduler):
        timer_interval = 50.0

        def __init__(self):
            super().__init__()
            self.count = 0

        def on_timer(self):
            # suspend at t=50 and again at t=100 (during overhead payback)
            if self.count < 2:
                self.count += 1
                for j in list(self.driver.running_jobs()):
                    self.driver.suspend_job(j)
            self._go()

    job = make_job(submit=0.0, run=100.0, procs=4)
    _, _ = drive([job], DoubleSuspend(), overhead_model=FixedOverheadModel(60.0))
    # t=50: suspended with 50s useful left, +60s overhead. resumes t=50.
    # t=100: ran 50s, all of it overhead (10s overhead left, 50 useful).
    # second suspension adds another 60s. finish = 100 + 10 + 60 + 50 = 220.
    assert job.finish_time == pytest.approx(220.0)
    assert job.total_overhead == pytest.approx(120.0)
    assert job.turnaround() == pytest.approx(job.run_time + job.total_overhead)


# ----------------------------------------------------------------------
# utilisation accounting
# ----------------------------------------------------------------------
def test_busy_integral_matches_job_areas():
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=2),
        make_job(job_id=1, submit=10.0, run=50.0, procs=1),
        make_job(job_id=2, submit=20.0, run=30.0, procs=4),
    ]
    _, result = drive(jobs, GreedyScheduler(), n_procs=4)
    area = sum(j.procs * j.run_time for j in jobs)
    assert result.busy_proc_seconds == pytest.approx(area)


def test_busy_integral_includes_overhead_time():
    job = make_job(submit=0.0, run=100.0, procs=4)
    _, result = drive([job], SuspendAtTimer(), overhead_model=FixedOverheadModel(30.0))
    assert result.busy_proc_seconds == pytest.approx(4 * 130.0)


def test_utilization_in_unit_interval():
    jobs = [make_job(job_id=i, submit=float(5 * i), run=20.0, procs=2) for i in range(10)]
    _, result = drive(jobs, GreedyScheduler(), n_procs=4)
    assert 0.0 < result.utilization <= 1.0


def test_steady_utilization_burst_at_time_zero():
    """All arrivals at t=0: the arrival window has zero length.

    Regression: the old ``last_arrival <= 0`` test conflated this case
    with "no window recorded" and silently fell back to whole-run
    utilisation.  With the explicit :attr:`arrival_window_closed` flag a
    genuinely zero-length window now reports 0.0 (no busy time can
    accrue in zero seconds), distinct from the fallback.
    """
    jobs = [make_job(job_id=i, submit=0.0, run=50.0, procs=2) for i in range(4)]
    _, result = drive(jobs, GreedyScheduler(), n_procs=4)
    assert result.arrival_window_closed
    assert result.last_arrival == 0.0
    assert result.steady_utilization == 0.0
    assert result.utilization > 0.0  # whole-run measure unaffected


def test_steady_utilization_spread_arrivals():
    """With arrivals spread out, the window measure uses exactly the
    busy area accrued up to the last arrival."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=4),
        make_job(job_id=1, submit=50.0, run=10.0, procs=2),
    ]
    _, result = drive(jobs, GreedyScheduler(), n_procs=4)
    assert result.arrival_window_closed
    assert result.last_arrival == 50.0
    # job 0 holds the whole machine for [0, 50): fully utilised window
    assert result.steady_utilization == pytest.approx(1.0)


def test_steady_utilization_unclosed_window_falls_back():
    """A result with no recorded window reports whole-run utilisation."""
    from repro.sim.driver import SimulationResult

    r = SimulationResult(
        scheduler="x",
        n_procs=4,
        jobs=[],
        makespan=100.0,
        busy_proc_seconds=200.0,
        total_suspensions=0,
        arrival_window_closed=False,
    )
    assert r.steady_utilization == r.utilization == pytest.approx(0.5)


# ----------------------------------------------------------------------
# drain enforcement
# ----------------------------------------------------------------------
def test_starving_scheduler_detected():
    class NeverStarts(Scheduler):
        name = "never"

        def on_arrival(self, job):
            pass

        def on_finish(self, job):
            pass

    with pytest.raises(SimulationError, match="never finished"):
        drive([make_job()], NeverStarts())


def test_require_drain_false_returns_partial():
    class NeverStarts(Scheduler):
        name = "never"

        def on_arrival(self, job):
            pass

        def on_finish(self, job):
            pass

    sim = SchedulingSimulation(Cluster(4), NeverStarts())
    result = sim.run([make_job()], require_drain=False)
    assert result.jobs == []


# ----------------------------------------------------------------------
# timer behaviour
# ----------------------------------------------------------------------
def test_timer_stops_after_drain():
    sched = SuspendAtTimer()
    jobs = [make_job(submit=0.0, run=60.0, procs=1)]
    sim, result = drive(jobs, sched)
    # no unbounded timer storm: events are bounded well below max_events
    assert result.events_dispatched < 50


def test_no_timer_for_nonpreemptive():
    _, result = drive([make_job(run=10.0)], GreedyScheduler())
    assert result.events_dispatched == 2  # arrival + finish only


# ----------------------------------------------------------------------
# speculative-start guards
# ----------------------------------------------------------------------
def test_start_speculative_kills_at_deadline():
    class Speculate(GreedyScheduler):
        def on_arrival(self, job):
            self.driver.start_speculative(job, deadline=self.driver.now + 30.0)

        def on_kill(self, job):
            # after the failed test run, start it for real
            self.driver.start_job(job)

    job = make_job(submit=0.0, run=100.0, procs=2)
    sim = SchedulingSimulation(Cluster(4), Speculate())
    result = sim.run([job])
    assert job.kill_count == 1
    assert job.wasted_time == pytest.approx(30.0)
    assert job.finish_time == pytest.approx(130.0)
    assert result.total_kills == 1


def test_start_speculative_win_cancels_kill():
    class Speculate(GreedyScheduler):
        def on_arrival(self, job):
            self.driver.start_speculative(job, deadline=self.driver.now + 500.0)

    job = make_job(submit=0.0, run=100.0, procs=2)
    sim = SchedulingSimulation(Cluster(4), Speculate())
    result = sim.run([job])
    assert job.kill_count == 0
    assert job.finish_time == pytest.approx(100.0)
    assert result.total_kills == 0


def test_start_speculative_rejects_past_deadline():
    class Bad(GreedyScheduler):
        def on_arrival(self, job):
            self.driver.start_speculative(job, deadline=self.driver.now)

    with pytest.raises(SimulationError, match="deadline"):
        drive([make_job()], Bad())


def test_start_speculative_rejects_checkpointed_job():
    class Bad(GreedyScheduler):
        timer_interval = 50.0

        def on_timer(self):
            for j in list(self.driver.running_jobs()):
                self.driver.suspend_job(j)
            for j in self.driver.queued_jobs():
                self.driver.start_speculative(j, deadline=self.driver.now + 10.0)

    with pytest.raises(SimulationError, match="checkpoint"):
        drive([make_job(run=100.0, procs=4)], Bad())

"""Conservative backfilling: universal reservations + compression."""

from __future__ import annotations

import pytest

from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def test_fig1_scenario():
    """The paper's Fig 1: job 3 must NOT delay job 2, so it waits even
    though processors are free for it right now."""
    jobs = [
        make_job(job_id=10, submit=0.0, run=100.0, procs=4),  # long runner
        make_job(job_id=11, submit=0.0, run=30.0, procs=4),  # short runner
        make_job(job_id=1, submit=1.0, run=50.0, procs=6),  # reserved at 100
        make_job(job_id=2, submit=2.0, run=50.0, procs=6, estimate=50.0),  # at 150
        # job 3 fits the 4 free procs at t=30 but would delay job 2's
        # reservation (it needs 4 procs for 200s spanning t=150):
        make_job(job_id=3, submit=3.0, run=200.0, procs=4),
    ]
    run_sim(jobs, ConservativeBackfillScheduler(), n_procs=8)
    assert jobs[2].first_start_time == pytest.approx(100.0)
    assert jobs[3].first_start_time == pytest.approx(150.0)  # never delayed
    assert jobs[4].first_start_time >= 200.0  # reserved behind job 2


def test_backfills_into_holes_when_harmless():
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=200.0, procs=8),  # reserved at 100
        make_job(job_id=2, submit=2.0, run=50.0, procs=3),  # fits hole before 100
    ]
    run_sim(jobs, ConservativeBackfillScheduler(), n_procs=8)
    assert jobs[2].first_start_time == pytest.approx(2.0)


def test_reservation_never_delayed_by_later_arrivals():
    """Core conservative guarantee: earlier-queued jobs' start times can
    only improve as later jobs arrive."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=8),
        make_job(job_id=1, submit=1.0, run=100.0, procs=8),  # reserved at 100
        *[
            make_job(job_id=2 + i, submit=2.0 + i, run=400.0, procs=4)
            for i in range(5)
        ],
    ]
    run_sim(jobs, ConservativeBackfillScheduler(), n_procs=8)
    assert jobs[1].first_start_time == pytest.approx(100.0)


def test_compression_on_early_termination():
    """When a job ends early, queued reservations move forward."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=40.0, procs=8, estimate=400.0),
        make_job(job_id=1, submit=1.0, run=10.0, procs=8),  # reserved at ~400
    ]
    run_sim(jobs, ConservativeBackfillScheduler(), n_procs=8)
    assert jobs[1].first_start_time == pytest.approx(40.0)


def test_compression_preserves_guarantee_order():
    """Compression releases reservations in guarantee order; a later job
    must not leapfrog an earlier one into the same hole."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=50.0, procs=8, estimate=300.0),
        make_job(job_id=1, submit=1.0, run=60.0, procs=8),  # reservation ~300
        make_job(job_id=2, submit=2.0, run=60.0, procs=8),  # reservation ~600
    ]
    run_sim(jobs, ConservativeBackfillScheduler(), n_procs=8)
    assert jobs[1].first_start_time == pytest.approx(50.0)
    assert jobs[2].first_start_time == pytest.approx(110.0)
    assert jobs[1].first_start_time < jobs[2].first_start_time


def test_guaranteed_start_is_exposed_and_cleared():
    sched = ConservativeBackfillScheduler()
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=8),
        make_job(job_id=1, submit=1.0, run=10.0, procs=8),
    ]
    run_sim(jobs, sched, n_procs=8)
    # after the run everything started; no reservations remain
    assert sched.guaranteed_start(jobs[1]) is None


def test_drains_mixed_workload(sdsc_trace_small):
    from repro.workload.archive import SDSC

    result = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        ConservativeBackfillScheduler(),
        n_procs=SDSC.n_procs,
    )
    assert all(j.state is JobState.FINISHED for j in result.jobs)
    assert result.total_suspensions == 0


def test_conservative_no_worse_than_fcfs(sdsc_trace_small):
    from repro.metrics.aggregate import overall_stats
    from repro.schedulers.fcfs import FCFSScheduler
    from repro.workload.archive import SDSC

    cons = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        ConservativeBackfillScheduler(),
        n_procs=SDSC.n_procs,
    )
    fcfs = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        FCFSScheduler(),
        n_procs=SDSC.n_procs,
    )
    assert (
        overall_stats(cons.jobs).slowdown.mean
        <= overall_stats(fcfs.jobs).slowdown.mean
    )


def test_conservative_vs_easy_both_valid(ctc_trace_small):
    """Not a dominance claim (neither dominates); both drain and produce
    sane utilisation on the same workload."""
    from repro.workload.archive import CTC

    for sched_cls in (ConservativeBackfillScheduler, EasyBackfillScheduler):
        result = run_sim(
            [j.copy_static() for j in ctc_trace_small],
            sched_cls(),
            n_procs=CTC.n_procs,
        )
        assert 0.0 < result.utilization <= 1.0

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.machine import Cluster
from repro.sim.driver import SchedulingSimulation, SimulationResult
from repro.workload.job import Job


def make_job(
    job_id: int = 0,
    submit: float = 0.0,
    run: float = 100.0,
    procs: int = 1,
    estimate: float | None = None,
    memory_mb: float = 0.0,
) -> Job:
    """Terse job constructor for tests (estimate defaults to accurate)."""
    return Job(
        job_id=job_id,
        submit_time=submit,
        run_time=run,
        estimate=estimate if estimate is not None else run,
        procs=procs,
        memory_mb=memory_mb,
    )


def run_sim(
    jobs: list[Job],
    scheduler,
    n_procs: int = 10,
    overhead_model=None,
) -> SimulationResult:
    """Run a scheduler over jobs on a fresh cluster (jobs used in place)."""
    driver = SchedulingSimulation(
        cluster=Cluster(n_procs), scheduler=scheduler, overhead_model=overhead_model
    )
    return driver.run(jobs)


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster(8)


@pytest.fixture
def ctc_trace_small():
    """A small CTC-shaped trace, cached per test session."""
    from repro.workload.synthetic import generate_trace

    return generate_trace("CTC", n_jobs=400, seed=11)


@pytest.fixture
def sdsc_trace_small():
    from repro.workload.synthetic import generate_trace

    return generate_trace("SDSC", n_jobs=400, seed=11)

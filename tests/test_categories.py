"""Job categorisation grids (Tables I and VI) and the estimate split."""

from __future__ import annotations

import pytest

from repro.workload.categories import (
    FOUR_WAY_CATEGORIES,
    SIXTEEN_WAY_CATEGORIES,
    LengthClass,
    WidthClass,
    category_label,
    classify_four_way,
    classify_sixteen_way,
    estimate_quality,
    length_class,
    width_class,
)
from tests.conftest import make_job

MIN = 60.0
HOUR = 3600.0


# ----------------------------------------------------------------------
# Table I: length classes
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "run_time, expected",
    [
        (1.0, LengthClass.VERY_SHORT),
        (10 * MIN, LengthClass.VERY_SHORT),  # inclusive upper bound
        (10 * MIN + 1, LengthClass.SHORT),
        (HOUR, LengthClass.SHORT),
        (HOUR + 1, LengthClass.LONG),
        (8 * HOUR, LengthClass.LONG),
        (8 * HOUR + 1, LengthClass.VERY_LONG),
        (7 * 24 * HOUR, LengthClass.VERY_LONG),
    ],
)
def test_length_class_boundaries(run_time, expected):
    assert length_class(run_time) is expected


def test_length_class_rejects_nonpositive():
    with pytest.raises(ValueError):
        length_class(0.0)


# ----------------------------------------------------------------------
# Table I: width classes
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "procs, expected",
    [
        (1, WidthClass.SEQUENTIAL),
        (2, WidthClass.NARROW),
        (8, WidthClass.NARROW),
        (9, WidthClass.WIDE),
        (32, WidthClass.WIDE),
        (33, WidthClass.VERY_WIDE),
        (430, WidthClass.VERY_WIDE),
    ],
)
def test_width_class_boundaries(procs, expected):
    assert width_class(procs) is expected


def test_width_class_rejects_zero():
    with pytest.raises(ValueError):
        width_class(0)


# ----------------------------------------------------------------------
# combined classifiers
# ----------------------------------------------------------------------
def test_sixteen_way_category_tuple():
    j = make_job(run=5 * MIN, procs=64)
    assert classify_sixteen_way(j) == ("VS", "VW")


def test_sixteen_way_full_grid_enumerated():
    assert len(SIXTEEN_WAY_CATEGORIES) == 16
    assert SIXTEEN_WAY_CATEGORIES[0] == ("VS", "Seq")
    assert SIXTEEN_WAY_CATEGORIES[-1] == ("VL", "VW")


@pytest.mark.parametrize(
    "run, procs, expected",
    [
        (30 * MIN, 4, ("S", "N")),
        (30 * MIN, 16, ("S", "W")),
        (2 * HOUR, 8, ("L", "N")),
        (2 * HOUR, 9, ("L", "W")),
        (HOUR, 8, ("S", "N")),  # Table VI boundaries inclusive
        (HOUR + 1, 9, ("L", "W")),
    ],
)
def test_four_way_classification(run, procs, expected):
    assert classify_four_way(make_job(run=run, procs=procs)) == expected


def test_four_way_grid_enumerated():
    assert FOUR_WAY_CATEGORIES == (("S", "N"), ("S", "W"), ("L", "N"), ("L", "W"))


def test_category_label_format():
    assert category_label(("VS", "VW")) == "VS VW"


# ----------------------------------------------------------------------
# section V estimate-quality split
# ----------------------------------------------------------------------
def test_estimate_quality_well():
    assert estimate_quality(make_job(run=100.0, estimate=150.0)) == "well"
    assert estimate_quality(make_job(run=100.0, estimate=200.0)) == "well"  # == 2x


def test_estimate_quality_badly():
    assert estimate_quality(make_job(run=100.0, estimate=201.0)) == "badly"
    assert estimate_quality(make_job(run=60.0, estimate=86400.0)) == "badly"


def test_every_combination_maps_to_a_category():
    """The grid is total: any (run, procs) yields a valid category."""
    for run in (1.0, 600.0, 601.0, 3600.0, 3601.0, 28800.0, 28801.0):
        for procs in (1, 2, 8, 9, 32, 33, 400):
            cat = classify_sixteen_way(make_job(run=run, procs=procs))
            assert cat in SIXTEEN_WAY_CATEGORIES

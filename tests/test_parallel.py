"""Parallel experiment executor, result cache, scheduler registry.

The contract under test (see :mod:`repro.experiments.parallel`):

* a parallel run is **indistinguishable** from a serial one -- same
  keys, same order, same per-job schedules, bit for bit;
* a warm cache serves every cell without simulating anything
  (``GridOutcome.executed == 0``);
* the cache fingerprint covers everything that changes results --
  trace, machine size, scheduler config (SF, interval, width rule,
  TSS limits), overhead model, migratable flag -- and nothing else.
"""

from __future__ import annotations

import pytest

from repro.core.overhead import DiskSwapOverheadModel, FixedOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler
from repro.experiments import (
    GridCell,
    ResultCache,
    cell_fingerprint,
    compare_schemes,
    compare_schemes_parallel,
    fingerprint_jobs,
    run_grid,
    simulate,
    standard_schemes,
    tuned_schemes,
)
from repro.experiments.parallel import resolve_workers
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.registry import known_schemes, scheduler_from_config
from repro.workload.synthetic import generate_trace

N_PROCS = 128


@pytest.fixture(scope="module")
def trace():
    return generate_trace("SDSC", n_jobs=1000, seed=11)


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace("SDSC", n_jobs=120, seed=5)


def schedule_signature(result):
    """Everything externally observable about one simulation."""
    return (
        result.scheduler,
        result.makespan,
        result.busy_proc_seconds,
        result.total_suspensions,
        result.events_dispatched,
        tuple(
            (j.job_id, j.first_start_time, j.finish_time, j.suspension_count)
            for j in result.jobs
        ),
    )


# ----------------------------------------------------------------------
# scheduler config round-trips (the registry the workers rely on)
# ----------------------------------------------------------------------
def test_config_round_trip_all_registered_schemes():
    for scheme in known_schemes():
        cfg = scheduler_from_config({"scheme": scheme}).config()
        rebuilt = scheduler_from_config(cfg)
        assert rebuilt.config() == cfg, scheme


def test_config_round_trip_preserves_parameters():
    s = SelectiveSuspensionScheduler(
        suspension_factor=5.0, preemption_interval=30.0, width_rule=False
    )
    rebuilt = scheduler_from_config(s.config())
    assert rebuilt.config() == s.config()
    assert rebuilt.criteria.suspension_factor == 5.0
    assert rebuilt.timer_interval == 30.0
    assert rebuilt.criteria.width_rule is False


def test_config_round_trip_tss_calibrated_limits(small_trace):
    ns = simulate(small_trace, EasyBackfillScheduler(), N_PROCS)
    from repro.core.tss import limits_from_result

    s = TunableSelectiveSuspensionScheduler(2.0, limits=limits_from_result(ns))
    cfg = s.config()
    rebuilt = scheduler_from_config(cfg)
    assert rebuilt.config() == cfg
    # and the rebuilt scheduler schedules identically
    a = simulate(small_trace, s, N_PROCS)
    b = simulate(small_trace, scheduler_from_config(cfg), N_PROCS)
    assert schedule_signature(a) == schedule_signature(b)


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown scheme"):
        scheduler_from_config({"scheme": "no-such-policy"})


# ----------------------------------------------------------------------
# parallel == serial
# ----------------------------------------------------------------------
def test_parallel_identical_to_serial(trace):
    serial = compare_schemes(trace, N_PROCS, standard_schemes())
    parallel = compare_schemes_parallel(
        trace, N_PROCS, standard_schemes(), workers=4
    )
    assert list(parallel) == list(serial)  # same keys, same order
    for label in serial:
        assert schedule_signature(parallel[label]) == schedule_signature(
            serial[label]
        ), label


def test_parallel_identical_to_serial_with_baseline_and_overhead(small_trace):
    overhead = DiskSwapOverheadModel()
    schemes = tuned_schemes(suspension_factors=(2.0,))
    serial = compare_schemes(small_trace, N_PROCS, schemes, overhead)
    parallel = compare_schemes_parallel(
        small_trace, N_PROCS, schemes, overhead, workers=3
    )
    assert list(parallel) == list(serial)
    for label in serial:
        assert schedule_signature(parallel[label]) == schedule_signature(
            serial[label]
        ), label


def test_run_grid_preserves_input_order(small_trace):
    cells = [
        GridCell(
            key=f"sf={sf}",
            jobs=small_trace,
            n_procs=N_PROCS,
            scheduler_config=SelectiveSuspensionScheduler(sf).config(),
        )
        for sf in (5.0, 1.5, 2.0)  # deliberately not sorted
    ]
    outcome = run_grid(cells, workers=3)
    assert list(outcome.results) == ["sf=5.0", "sf=1.5", "sf=2.0"]
    assert outcome.executed == 3
    assert outcome.cache_hits == 0


def test_run_grid_rejects_duplicate_keys(small_trace):
    cell = GridCell(
        key="dup",
        jobs=small_trace,
        n_procs=N_PROCS,
        scheduler_config=EasyBackfillScheduler().config(),
    )
    with pytest.raises(ValueError, match="duplicate"):
        run_grid([cell, cell])


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(0) >= 1  # one per CPU
    assert resolve_workers(7) == 7
    assert resolve_workers(-3) == 1


# ----------------------------------------------------------------------
# the result cache
# ----------------------------------------------------------------------
def test_warm_cache_runs_zero_simulations(small_trace, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    schemes = standard_schemes(suspension_factors=(2.0,))
    first = compare_schemes_parallel(
        small_trace, N_PROCS, schemes, workers=2, cache=cache
    )
    stored = len(cache)
    assert stored > 0

    cells = [
        GridCell(
            key=label,
            jobs=small_trace,
            n_procs=N_PROCS,
            scheduler_config=cfg,
        )
        for label, cfg in (
            ("SF = 2", SelectiveSuspensionScheduler(2.0).config()),
            ("No Suspension", EasyBackfillScheduler().config()),
        )
    ]
    outcome = run_grid(cells, workers=2, cache=cache)
    assert outcome.executed == 0  # fully warm: nothing simulated
    assert outcome.cache_hits == len(cells)
    assert len(cache) == stored  # nothing new written
    for label in ("SF = 2", "No Suspension"):
        assert schedule_signature(outcome.results[label]) == schedule_signature(
            first[label]
        )


def test_cached_result_identical_to_fresh(small_trace, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cell = GridCell(
        key="ss",
        jobs=small_trace,
        n_procs=N_PROCS,
        scheduler_config=SelectiveSuspensionScheduler(2.0).config(),
    )
    cold = run_grid([cell], cache=cache)
    warm = run_grid([cell], cache=cache)
    assert cold.executed == 1 and cold.cache_hits == 0
    assert warm.executed == 0 and warm.cache_hits == 1
    assert schedule_signature(cold.results["ss"]) == schedule_signature(
        warm.results["ss"]
    )


def test_fingerprint_sensitivity(small_trace):
    """The cache key must change with anything that changes results."""
    jobs_fp = fingerprint_jobs(small_trace)
    base = cell_fingerprint(
        jobs_fp, N_PROCS, SelectiveSuspensionScheduler(2.0).config(), None, False
    )

    # different SF
    assert base != cell_fingerprint(
        jobs_fp, N_PROCS, SelectiveSuspensionScheduler(1.5).config(), None, False
    )
    # different sweep interval
    assert base != cell_fingerprint(
        jobs_fp,
        N_PROCS,
        SelectiveSuspensionScheduler(2.0, preemption_interval=30.0).config(),
        None,
        False,
    )
    # width rule off
    assert base != cell_fingerprint(
        jobs_fp,
        N_PROCS,
        SelectiveSuspensionScheduler(2.0, width_rule=False).config(),
        None,
        False,
    )
    # overhead model present / different parameters
    with_oh = cell_fingerprint(
        jobs_fp,
        N_PROCS,
        SelectiveSuspensionScheduler(2.0).config(),
        DiskSwapOverheadModel(),
        False,
    )
    assert base != with_oh
    assert with_oh != cell_fingerprint(
        jobs_fp,
        N_PROCS,
        SelectiveSuspensionScheduler(2.0).config(),
        FixedOverheadModel(30.0),
        False,
    )
    # migratable flag
    assert base != cell_fingerprint(
        jobs_fp, N_PROCS, SelectiveSuspensionScheduler(2.0).config(), None, True
    )
    # machine size
    assert base != cell_fingerprint(
        jobs_fp, 256, SelectiveSuspensionScheduler(2.0).config(), None, False
    )
    # different trace (seed)
    other_fp = fingerprint_jobs(generate_trace("SDSC", n_jobs=120, seed=6))
    assert other_fp != jobs_fp
    assert base != cell_fingerprint(
        other_fp, N_PROCS, SelectiveSuspensionScheduler(2.0).config(), None, False
    )
    # ... and identical inputs reproduce the same fingerprint
    assert base == cell_fingerprint(
        jobs_fp, N_PROCS, SelectiveSuspensionScheduler(2.0).config(), None, False
    )


def test_jobs_fingerprint_order_sensitive(small_trace):
    reordered = list(reversed(small_trace))
    assert fingerprint_jobs(small_trace) != fingerprint_jobs(reordered)


def test_cache_survives_corrupt_entry(small_trace, tmp_path):
    """A garbage cache file is quarantined and treated as a miss."""
    cache = ResultCache(tmp_path / "cache")
    cell = GridCell(
        key="x",
        jobs=small_trace,
        n_procs=N_PROCS,
        scheduler_config=EasyBackfillScheduler().config(),
    )
    run_grid([cell], cache=cache)
    (path,) = list((tmp_path / "cache").rglob("*.pkl"))
    path.write_bytes(b"not a pickle")
    outcome = run_grid([cell], cache=cache)
    assert outcome.executed == 1  # re-simulated despite the bad file
    assert outcome.results["x"].n_procs == N_PROCS

    # the poisoned bytes were moved aside, not destroyed or served
    assert cache.corrupt == 1
    assert outcome.counters.cache_quarantines == 1
    quarantined = path.with_name(path.name + ".corrupt")
    assert quarantined.read_bytes() == b"not a pickle"
    # ... the fresh result repaired the canonical slot in passing ...
    assert path.exists() and len(cache) == 1  # *.corrupt is not an entry
    # ... so the next run is a plain hit again
    third = run_grid([cell], cache=cache)
    assert third.cache_hits == 1 and third.executed == 0
    assert cache.corrupt == 1  # no new quarantine
    assert schedule_signature(third.results["x"]) == schedule_signature(
        outcome.results["x"]
    )


def test_grid_policy_from_env():
    from repro.experiments import GridPolicy

    assert GridPolicy.from_env({}) == GridPolicy()
    assert GridPolicy.from_env(
        {"REPRO_BENCH_CELL_TIMEOUT": "120", "REPRO_BENCH_CELL_RETRIES": "2"}
    ) == GridPolicy(cell_timeout=120.0, cell_retries=2)
    # empty values keep the defaults, other policy knobs untouched
    env_policy = GridPolicy.from_env({"REPRO_BENCH_CELL_TIMEOUT": ""})
    assert env_policy.cell_timeout is None
    assert env_policy.pool_respawns == GridPolicy().pool_respawns


# ----------------------------------------------------------------------
# per-cell tracing through the grid (docs/TRACING.md)
# ----------------------------------------------------------------------
def test_trace_file_for_key_sanitises():
    from repro.experiments.parallel import trace_file_for_key

    assert trace_file_for_key("d", "SF = 1.5").endswith("SF_1.5.jsonl")
    assert trace_file_for_key("d", "(SS, load 1.2)").endswith("SS_load_1.2.jsonl")
    assert trace_file_for_key("d", "///").endswith("cell.jsonl")


def test_trace_files_for_keys_disambiguates_collisions():
    from repro.experiments.parallel import trace_file_for_key, trace_files_for_keys

    # non-colliding keys keep the plain sanitised name
    plain = trace_files_for_keys("d", ["SF = 1.5", "SF = 2.0"])
    assert plain == {
        "SF = 1.5": trace_file_for_key("d", "SF = 1.5"),
        "SF = 2.0": trace_file_for_key("d", "SF = 2.0"),
    }

    # distinct keys that sanitise identically each get a key-hash suffix
    paths = trace_files_for_keys("d", ["SS load=1.2", "SS load 1.2"])
    assert len(set(paths.values())) == 2  # no silent interleaving
    for key, path in paths.items():
        assert path.startswith(str(__import__("pathlib").Path("d") / "SS_load_1.2-"))
        assert path.endswith(".jsonl")
    # the suffix depends only on the key: stable across calls
    assert trace_files_for_keys("d", ["SS load=1.2", "SS load 1.2"]) == paths


def test_run_grid_rejects_shared_trace_paths(small_trace, tmp_path):
    cells = [
        GridCell(
            key=key,
            jobs=small_trace,
            n_procs=N_PROCS,
            scheduler_config=EasyBackfillScheduler().config(),
            trace_path=str(tmp_path / "same.jsonl"),
        )
        for key in ("a", "b")
    ]
    with pytest.raises(ValueError, match="share trace paths"):
        run_grid(cells)


def test_run_grid_writes_traces_and_bypasses_cache(small_trace, tmp_path):
    from repro.obs import read_trace, summarize_trace

    cache = ResultCache(tmp_path / "cache")
    traced = GridCell(
        key="traced",
        jobs=small_trace,
        n_procs=N_PROCS,
        scheduler_config=EasyBackfillScheduler().config(),
        trace_path=str(tmp_path / "traced.jsonl"),
    )
    plain = GridCell(
        key="plain",
        jobs=small_trace,
        n_procs=N_PROCS,
        scheduler_config=EasyBackfillScheduler().config(),
    )
    first = run_grid([traced, plain], cache=cache)
    assert first.executed == 2 and first.cache_hits == 0
    assert first.trace_paths == {"traced": str(tmp_path / "traced.jsonl")}
    summary = summarize_trace(read_trace(tmp_path / "traced.jsonl"))
    assert summary.matches_run_end is True

    # warm cache: the plain cell hits, the traced cell re-simulates
    # (and rewrites its trace) -- traces record actual runs, never
    # cache hits, in either direction
    second = run_grid([traced, plain], cache=cache)
    assert second.cache_hits == 1
    assert second.executed == 1
    assert schedule_signature(first.results["traced"]) == schedule_signature(
        second.results["traced"]
    )
    # the cached plain result carries no counters (it was untraced)
    assert second.results["plain"].counters is None


def test_parallel_trace_dir_matches_untraced_run(small_trace, tmp_path):
    from repro.obs import read_trace, summarize_trace

    schemes = standard_schemes([1.5])
    plain = compare_schemes_parallel(small_trace, N_PROCS, schemes, workers=2)
    traced = compare_schemes_parallel(
        small_trace, N_PROCS, schemes, workers=2, trace_dir=tmp_path / "traces"
    )
    assert list(plain) == list(traced)
    for label in plain:
        assert schedule_signature(plain[label]) == schedule_signature(traced[label])

    files = sorted((tmp_path / "traces").glob("*.jsonl"))
    assert len(files) == len(schemes)
    for path in files:
        summary = summarize_trace(read_trace(path))
        assert summary.matches_run_end is True


def test_traced_worker_results_match_trace_contents(small_trace, tmp_path):
    """The per-cell trace written by a pool worker must replay to the

    exact totals of the result the pool returned for that cell."""
    from repro.experiments.parallel import trace_file_for_key
    from repro.obs import read_trace, summarize_trace

    schemes = standard_schemes([2.0])
    results = compare_schemes_parallel(
        small_trace, N_PROCS, schemes, workers=2, trace_dir=tmp_path
    )
    for spec in schemes:
        path = trace_file_for_key(tmp_path, spec.label)
        summary = summarize_trace(read_trace(path))
        result = results[spec.label]
        assert summary.suspensions == result.total_suspensions
        assert summary.finished == len(result.jobs)
        assert abs(summary.busy_proc_seconds - result.busy_proc_seconds) <= 1e-6

"""Synthetic trace generation: determinism, calibration, bounds."""

from __future__ import annotations

import pytest

from repro.metrics.aggregate import category_shares
from repro.workload.archive import CTC, KTH, SDSC, TracePreset, get_preset
from repro.workload.categories import classify_sixteen_way
from repro.workload.estimates import InaccurateEstimates
from repro.workload.synthetic import generate_trace


def test_deterministic_for_same_seed():
    a = generate_trace("CTC", n_jobs=200, seed=5)
    b = generate_trace("CTC", n_jobs=200, seed=5)
    assert [(j.submit_time, j.run_time, j.procs) for j in a] == [
        (j.submit_time, j.run_time, j.procs) for j in b
    ]


def test_different_seeds_differ():
    a = generate_trace("CTC", n_jobs=200, seed=5)
    b = generate_trace("CTC", n_jobs=200, seed=6)
    assert [(j.run_time, j.procs) for j in a] != [(j.run_time, j.procs) for j in b]


def test_jobs_sorted_with_sequential_ids():
    jobs = generate_trace("SDSC", n_jobs=100, seed=1)
    assert [j.job_id for j in jobs] == list(range(100))
    submits = [j.submit_time for j in jobs]
    assert submits == sorted(submits)
    assert submits[0] == 0.0


def test_widths_respect_machine_and_class_bounds():
    for name in ("CTC", "SDSC", "KTH"):
        preset = get_preset(name)
        jobs = generate_trace(name, n_jobs=500, seed=3)
        for j in jobs:
            assert 1 <= j.procs <= preset.max_width
            length, width = classify_sixteen_way(j)
            if width == "Seq":
                assert j.procs == 1
            elif width == "N":
                assert 2 <= j.procs <= 8
            elif width == "W":
                assert 9 <= j.procs <= 32
            else:
                assert j.procs >= 33


def test_runtimes_respect_class_bounds():
    preset = get_preset("CTC")
    jobs = generate_trace("CTC", n_jobs=500, seed=3)
    for j in jobs:
        length, _ = classify_sixteen_way(j)
        lo, hi = preset.runtime_bounds[length]
        assert lo <= j.run_time <= hi + 1e-9


def test_category_shares_match_preset():
    """Multinomial draw should land near Tables II/III at modest n."""
    preset = get_preset("CTC")
    jobs = generate_trace("CTC", n_jobs=8000, seed=2)
    shares = category_shares(jobs)
    for cat, expected in preset.category_shares.items():
        got = shares.get(cat, 0.0)
        assert abs(got - expected) < 0.02, f"{cat}: {got} vs {expected}"


def test_offered_load_matches_target():
    """mean interarrival calibration: offered load == target utilisation."""
    preset = get_preset("SDSC")
    jobs = generate_trace("SDSC", n_jobs=4000, seed=9)
    span = jobs[-1].submit_time
    area = sum(j.run_time * j.procs for j in jobs)
    offered = area / (preset.n_procs * span)
    assert offered == pytest.approx(preset.target_utilization, rel=0.10)


def test_memory_in_configured_range():
    jobs = generate_trace("CTC", n_jobs=300, seed=4)
    assert all(100.0 <= j.memory_mb <= 1000.0 for j in jobs)


def test_accurate_estimates_by_default():
    jobs = generate_trace("CTC", n_jobs=200, seed=4)
    assert all(j.estimate == j.run_time for j in jobs)


def test_estimate_model_applied():
    jobs = generate_trace(
        "CTC", n_jobs=2000, seed=4, estimate_model=InaccurateEstimates()
    )
    assert all(j.estimate >= j.run_time for j in jobs)
    badly = sum(1 for j in jobs if j.estimate > 2 * j.run_time)
    assert 0.3 < badly / len(jobs) < 0.5


def test_diurnal_changes_arrivals_only():
    plain = generate_trace("CTC", n_jobs=300, seed=4)
    wavy = generate_trace("CTC", n_jobs=300, seed=4, diurnal=True)
    # same job bodies (sorted by id), different arrival spacing
    plain_by_id = sorted(plain, key=lambda j: j.job_id)
    wavy_by_id = sorted(wavy, key=lambda j: j.job_id)
    assert [j.submit_time for j in plain_by_id] != [j.submit_time for j in wavy_by_id]
    assert sorted(j.run_time for j in plain) == sorted(j.run_time for j in wavy)


def test_generate_rejects_nonpositive_n():
    with pytest.raises(ValueError):
        generate_trace("CTC", n_jobs=0)


def test_generate_accepts_preset_instance():
    jobs = generate_trace(SDSC, n_jobs=50, seed=1)
    assert len(jobs) == 50


def test_unknown_preset_name_raises():
    with pytest.raises(KeyError, match="unknown trace preset"):
        generate_trace("NERSC", n_jobs=10)


def test_preset_lookup_case_insensitive():
    assert get_preset("ctc") is CTC
    assert get_preset("sdsc") is SDSC
    assert get_preset("Kth") is KTH


# ----------------------------------------------------------------------
# preset validation
# ----------------------------------------------------------------------
def test_preset_shares_must_sum_to_one():
    bad = dict(CTC.category_shares)
    bad[("VS", "Seq")] += 0.5
    with pytest.raises(ValueError, match="sum"):
        TracePreset(
            name="BAD",
            n_procs=64,
            category_shares=bad,
            target_utilization=0.5,
            saturation_load=1.5,
            max_width=64,
        )


def test_preset_max_width_within_machine():
    with pytest.raises(ValueError, match="max_width"):
        TracePreset(
            name="BAD",
            n_procs=64,
            category_shares=dict(CTC.category_shares),
            target_utilization=0.5,
            saturation_load=1.5,
            max_width=128,
        )


def test_paper_distribution_tables_encoded():
    """Spot-check the presets against Tables II/III."""
    assert CTC.category_shares[("VS", "Seq")] == pytest.approx(0.14)
    assert CTC.category_shares[("S", "Seq")] == pytest.approx(0.18)
    assert SDSC.category_shares[("VS", "N")] == pytest.approx(0.29)
    assert SDSC.category_shares[("VL", "N")] == pytest.approx(0.05)
    assert CTC.n_procs == 430
    assert SDSC.n_procs == 128
    assert KTH.n_procs == 100

"""Time-series probe."""

from __future__ import annotations

import pytest

from repro.cluster.machine import Cluster
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.metrics.timeseries import StateProbe, StateSample
from repro.schedulers.easy import EasyBackfillScheduler
from repro.sim.driver import SchedulingSimulation
from repro.workload.job import fresh_copies
from repro.workload.synthetic import generate_trace
from tests.conftest import make_job


def run_probed(jobs, scheduler, n_procs, interval=300.0):
    probe = StateProbe(interval=interval)
    sim = SchedulingSimulation(Cluster(n_procs), scheduler, probe=probe)
    result = sim.run(jobs)
    return probe, result


def test_probe_validates_interval():
    with pytest.raises(ValueError):
        StateProbe(interval=0.0)


def test_probe_collects_samples():
    jobs = [make_job(job_id=i, submit=600.0 * i, run=500.0, procs=2) for i in range(5)]
    probe, _ = run_probed(jobs, EasyBackfillScheduler(), n_procs=4)
    assert probe.samples
    times = probe.times()
    assert times == sorted(times)


def test_probe_decimates_by_interval():
    jobs = [make_job(job_id=i, submit=float(i), run=10.0, procs=1) for i in range(50)]
    probe, _ = run_probed(jobs, EasyBackfillScheduler(), n_procs=4, interval=20.0)
    times = probe.times()
    assert all(b - a >= 20.0 - 1e-9 for a, b in zip(times, times[1:], strict=False))
    assert len(times) < 50


def test_sample_consistency():
    jobs = generate_trace("SDSC", n_jobs=200, seed=5)
    probe, _ = run_probed(
        fresh_copies(jobs), SelectiveSuspensionScheduler(2.0), n_procs=128
    )
    for s in probe.samples:
        assert s.busy_procs + s.free_procs == 128
        assert s.queued == s.queued_fresh + s.queued_suspended
        assert s.running >= 0


def test_suspended_jobs_visible_in_series():
    jobs = [
        make_job(job_id=0, submit=0.0, run=10_000.0, procs=4),
        make_job(job_id=1, submit=10.0, run=60.0, procs=4),
    ]
    probe, result = run_probed(
        jobs,
        SelectiveSuspensionScheduler(suspension_factor=1.5, preemption_interval=10.0),
        n_procs=4,
        interval=5.0,
    )
    assert result.total_suspensions >= 1
    assert probe.peak("queued_suspended") >= 1


def test_series_accessors():
    jobs = [make_job(job_id=i, submit=100.0 * i, run=50.0, procs=2) for i in range(4)]
    probe, _ = run_probed(jobs, EasyBackfillScheduler(), n_procs=4, interval=30.0)
    util = probe.series("utilization")
    assert all(0.0 <= u <= 1.0 for u in util)
    assert probe.mean("busy_procs") >= 0.0
    with pytest.raises(KeyError):
        probe.series("nonsense")


def test_sample_is_frozen():
    s = StateSample(0.0, 1, 2, 3, 4, 4)
    with pytest.raises(AttributeError):
        s.running = 5  # type: ignore[misc]

"""Recovery paths of the fault-tolerant grid executor.

Contract under test (see :mod:`repro.experiments.parallel` and
``tests/fault_injection.py``):

* disturbed grids still produce **byte-identical** results -- a crash,
  hang, killed worker or killed pool changes wall-clock and the
  failure report, never the merged schedules;
* completed cells are committed to the cache **the moment they
  finish**, so killing a run -- even with SIGKILL, even mid-grid --
  loses zero finished work: the re-run serves every previously
  completed cell from cache and simulates only the remainder;
* what happened is reported structurally: :attr:`GridOutcome.failures`
  carries a :class:`CellFailure` per disturbed cell and
  :class:`GridCounters` tallies retries / timeouts / respawns /
  degraded cells.

Fast deterministic cases (in-process crash/retry/resume) run in tier-1;
everything that spins real pools and waits out timeouts or pool deaths
is marked ``fault`` and runs in CI's dedicated fault-tolerance job
(``pytest -m fault``).
"""

from __future__ import annotations

import functools
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.experiments import (
    GridCell,
    GridExecutionError,
    GridPolicy,
    ResultCache,
    run_grid,
)
from repro.experiments.shm import SEGMENT_PREFIX
from repro.workload.synthetic import generate_trace

from tests.fault_injection import (
    CRASH,
    HANG,
    KILL,
    FaultPlan,
    FaultSpec,
    faulty_simulate,
)

N_PROCS = 128

#: no-backoff retry policy: recovery tests assert behaviour, not pacing
RETRY = GridPolicy(cell_retries=1, backoff_base=0.0)


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace("SDSC", n_jobs=80, seed=3)


def schedule_signature(result):
    """Everything externally observable about one simulation."""
    return (
        result.scheduler,
        result.makespan,
        result.busy_proc_seconds,
        result.total_suspensions,
        result.events_dispatched,
        tuple(
            (j.job_id, j.first_start_time, j.finish_time, j.suspension_count)
            for j in result.jobs
        ),
    )


def sf_cells(jobs, factors):
    return [
        GridCell(
            key=f"sf={sf}",
            jobs=jobs,
            n_procs=N_PROCS,
            scheduler_config=SelectiveSuspensionScheduler(sf).config(),
        )
        for sf in factors
    ]


def plan_for(tmp_path, **faults):
    """A picklable simulate_fn injecting *faults* (key -> FaultSpec)."""
    plan = FaultPlan(state_dir=str(tmp_path / "fault-state"), faults=faults)
    return functools.partial(faulty_simulate, plan)


def segments_for_pid(pid):
    """Workload-plane segments in /dev/shm published by process *pid*.

    Segment names embed the creating pid (``rprs-<fp12>-<pid>-<seq>``),
    so leak checks are precise: parallel test runs cannot see each
    other's segments.
    """
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:  # non-Linux: nothing observable to leak
        return []
    return [n for n in names if n.startswith(SEGMENT_PREFIX) and f"-{pid}-" in n]


# ----------------------------------------------------------------------
# tier-1: crash / retry / give-up / resume, no real pools needed
# ----------------------------------------------------------------------
def test_crash_then_retry_succeeds_serial(tiny_trace, tmp_path):
    cells = sf_cells(tiny_trace, (1.5, 2.0))
    clean = run_grid(cells)
    outcome = run_grid(
        cells,
        policy=RETRY,
        simulate_fn=plan_for(tmp_path, **{"sf=2.0": FaultSpec(CRASH)}),
    )
    for key in clean.results:
        assert schedule_signature(outcome.results[key]) == schedule_signature(
            clean.results[key]
        ), key

    assert outcome.counters.retries == 1
    failure = outcome.failures["sf=2.0"]
    assert failure.exc_type == "InjectedCrash"
    assert failure.worker_fate == "crashed"
    assert failure.attempts == 1
    assert failure.resolved and failure.resolution == "retry"
    assert "sf=1.5" not in outcome.failures  # innocents stay unreported


def test_crash_exhausting_budget_raises(tiny_trace, tmp_path):
    cells = sf_cells(tiny_trace, (2.0,))
    with pytest.raises(GridExecutionError) as excinfo:
        run_grid(
            cells,
            policy=GridPolicy(cell_retries=1, backoff_base=0.0),
            simulate_fn=plan_for(tmp_path, **{"sf=2.0": FaultSpec(CRASH, times=2)}),
        )
    err = excinfo.value
    assert err.key == "sf=2.0"
    failure = err.failures["sf=2.0"]
    assert failure.attempts == 2  # first try + one retry
    assert failure.resolution == "gave-up" and not failure.resolved
    assert "InjectedCrash" in str(err)


def test_crash_mid_grid_loses_no_committed_cells(tiny_trace, tmp_path):
    """The resume contract, serially: a run that dies at cell N re-runs
    as N-1 cache hits plus exactly one fresh simulation."""
    factors = (1.2, 1.5, 2.0, 3.0, 5.0)
    cells = sf_cells(tiny_trace, factors)
    clean = run_grid(cells)

    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(GridExecutionError):
        run_grid(
            cells,
            cache=cache,
            simulate_fn=plan_for(
                tmp_path, **{f"sf={factors[-1]}": FaultSpec(CRASH)}
            ),  # default policy: zero retries -> the last cell is fatal
        )
    assert len(cache) == len(cells) - 1  # everything before it committed

    resumed = run_grid(cells, cache=cache)  # fault fixed: plain simulate
    assert resumed.cache_hits == len(cells) - 1
    assert resumed.executed == 1
    assert not resumed.failures
    for key in clean.results:
        assert schedule_signature(resumed.results[key]) == schedule_signature(
            clean.results[key]
        ), key


def test_pool_crash_retries_and_matches_serial(tiny_trace, tmp_path):
    """Completion-order collection + a crashed worker: merged output is
    still byte-identical to the serial run."""
    cells = sf_cells(tiny_trace, (1.2, 1.5, 2.0, 3.0))
    clean = run_grid(cells)
    outcome = run_grid(
        cells,
        workers=2,
        policy=RETRY,
        simulate_fn=plan_for(tmp_path, **{"sf=1.5": FaultSpec(CRASH)}),
    )
    assert list(outcome.results) == list(clean.results)  # input order kept
    for key in clean.results:
        assert schedule_signature(outcome.results[key]) == schedule_signature(
            clean.results[key]
        ), key
    assert outcome.counters.retries == 1
    assert outcome.failures["sf=1.5"].resolved


def test_injected_crash_pickles_across_processes(tmp_path):
    """The harness itself: markers claim atomically, partials pickle."""
    import pickle

    plan = FaultPlan(state_dir=str(tmp_path), faults={"x": FaultSpec(CRASH, times=2)})
    fn = functools.partial(faulty_simulate, plan)
    assert pickle.loads(pickle.dumps(fn)).func is faulty_simulate
    from tests.fault_injection import _claim

    assert _claim(str(tmp_path), "x", 2) is True
    assert plan.attempts_claimed("x") == 1
    assert _claim(str(tmp_path), "x", 2) is True
    assert _claim(str(tmp_path), "x", 2) is False  # budget spent
    assert plan.attempts_claimed("x") == 2


# ----------------------------------------------------------------------
# fault-marked: real pools, real timeouts, real SIGKILLs
# ----------------------------------------------------------------------
@pytest.mark.fault
def test_hung_worker_is_culled_and_cell_retried(tiny_trace, tmp_path):
    cells = sf_cells(tiny_trace, (1.2, 1.5, 2.0, 3.0))
    clean = run_grid(cells)
    outcome = run_grid(
        cells,
        workers=2,
        policy=GridPolicy(cell_timeout=2.0, cell_retries=1, backoff_base=0.0),
        simulate_fn=plan_for(tmp_path, **{"sf=2.0": FaultSpec(HANG)}),
    )
    for key in clean.results:
        assert schedule_signature(outcome.results[key]) == schedule_signature(
            clean.results[key]
        ), key
    assert outcome.counters.timeouts == 1
    assert outcome.counters.pool_respawns >= 1  # hung pool was culled
    failure = outcome.failures["sf=2.0"]
    assert failure.worker_fate == "hung"
    assert failure.exc_type == "TimeoutError"
    assert failure.resolved and failure.resolution == "pool-respawn"


@pytest.mark.fault
def test_killed_worker_respawns_pool(tiny_trace, tmp_path):
    cells = sf_cells(tiny_trace, (1.2, 1.5, 2.0, 3.0))
    clean = run_grid(cells)
    outcome = run_grid(
        cells,
        workers=2,
        simulate_fn=plan_for(tmp_path, **{"sf=1.5": FaultSpec(KILL)}),
    )  # default policy: pool loss is uncharged, so no retries needed
    for key in clean.results:
        assert schedule_signature(outcome.results[key]) == schedule_signature(
            clean.results[key]
        ), key
    assert outcome.counters.pool_respawns == 1
    assert outcome.counters.degraded_cells == 0
    failure = outcome.failures["sf=1.5"]
    assert failure.worker_fate == "lost"
    assert failure.attempts == 0  # the pool died; the cell is innocent
    assert failure.resolved and failure.resolution == "pool-respawn"


@pytest.mark.fault
def test_repeated_pool_death_degrades_to_in_process(tiny_trace, tmp_path):
    cells = sf_cells(tiny_trace, (1.2, 1.5, 2.0, 3.0))
    clean = run_grid(cells)
    outcome = run_grid(
        cells,
        workers=2,
        policy=GridPolicy(pool_respawns=1),
        simulate_fn=plan_for(tmp_path, **{"sf=1.5": FaultSpec(KILL, times=2)}),
    )
    for key in clean.results:
        assert schedule_signature(outcome.results[key]) == schedule_signature(
            clean.results[key]
        ), key
    assert outcome.counters.pool_respawns == 1  # budget spent...
    assert outcome.counters.degraded_cells >= 1  # ...then gave up on pools
    failure = outcome.failures["sf=1.5"]
    assert failure.resolved and failure.resolution == "in-process"


@pytest.mark.fault
def test_pool_respawn_reattaches_segments(tiny_trace, tmp_path):
    """Shared-memory plane x pool death: the respawned pool's fresh
    workers re-attach the published workload segment, results stay
    byte-identical, and the segment is unlinked when the grid returns."""
    cells = sf_cells(tiny_trace, (1.2, 1.5, 2.0, 3.0))
    clean = run_grid(cells)
    outcome = run_grid(
        cells,
        workers=2,
        shm=True,
        simulate_fn=plan_for(tmp_path, **{"sf=1.5": FaultSpec(KILL)}),
    )
    for key in clean.results:
        assert schedule_signature(outcome.results[key]) == schedule_signature(
            clean.results[key]
        ), key
    assert outcome.counters.pool_respawns == 1
    assert outcome.counters.shm_segments == 1  # one workload -> one segment
    assert outcome.counters.shm_fallbacks == 0  # nobody needed the escape hatch
    assert segments_for_pid(os.getpid()) == []  # deterministically unlinked


_COORDINATOR = """\
import sys

sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})

import functools

from tests.fault_injection import KILL_RUN, FaultPlan, FaultSpec, faulty_simulate
from repro.experiments import GridCell, ResultCache, run_grid
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.workload.synthetic import generate_trace

jobs = generate_trace("SDSC", n_jobs=80, seed=3)
cells = [
    GridCell(
        key=f"sf={{sf}}",
        jobs=jobs,
        n_procs=128,
        scheduler_config=SelectiveSuspensionScheduler(sf).config(),
    )
    for sf in {factors!r}
]
plan = FaultPlan(
    state_dir={state_dir!r},
    faults={{{kill_key!r}: FaultSpec(KILL_RUN)}},
)
run_grid(
    cells,
    workers=4,
    cache=ResultCache({cache_dir!r}),
    simulate_fn=functools.partial(faulty_simulate, plan),
)
print("UNREACHABLE: the coordinator survived its own SIGKILL")
"""


@pytest.mark.fault
def test_sigkilled_run_loses_zero_completed_cells(tiny_trace, tmp_path):
    """The ISSUE's acceptance scenario: a >=20-cell grid whose
    coordinating process is SIGKILLed mid-run resumes with every
    previously completed cell served from cache and the merged results
    byte-identical to an uninterrupted serial run."""
    factors = tuple(round(1.1 + 0.1 * i, 1) for i in range(20))  # 1.1 .. 3.0
    kill_key = f"sf={factors[12]}"
    cache_dir = tmp_path / "cache"
    script = tmp_path / "coordinator.py"
    script.write_text(
        _COORDINATOR.format(
            src=str(Path(__file__).resolve().parent.parent / "src"),
            root=str(Path(__file__).resolve().parent.parent),
            factors=factors,
            state_dir=str(tmp_path / "fault-state"),
            kill_key=kill_key,
            cache_dir=str(cache_dir),
        )
    )
    # own session/process group so the orphaned pool workers the SIGKILL
    # leaves behind can be reaped no matter what state they are in; a
    # log *file*, not a pipe -- the orphans inherit stdout, so a pipe
    # would never reach EOF and any read would block on them
    log = tmp_path / "coordinator.log"
    with log.open("wb") as fh:
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=fh,
            stderr=subprocess.STDOUT,
            start_new_session=True,
        )
        try:
            proc.wait(timeout=300)
        finally:
            # Reap the orphans with SIGTERM first: the multiprocessing
            # resource tracker ignores it, outlives the group, and
            # unlinks the run's shared-memory workload segments the
            # moment the last holder of its pipe dies.  A straight
            # SIGKILL of the whole group would take the tracker down
            # with the workers and leak /dev/shm entries -- the one
            # crash shape the tracker cannot cover.
            try:
                os.killpg(proc.pid, signal.SIGTERM)
            except (ProcessLookupError, PermissionError):
                pass
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and segments_for_pid(proc.pid):
                time.sleep(0.05)
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    out = log.read_bytes()
    assert proc.returncode == -signal.SIGKILL, out.decode()
    assert b"UNREACHABLE" not in out
    # killed-coordinator leak check: the coordinator published its
    # workload segment (workers=4 -> the plane is on by default) and
    # never reached its finally -- the resource tracker must have
    # unlinked it once the worker orphans died
    assert segments_for_pid(proc.pid) == []

    cache = ResultCache(cache_dir)
    completed_before_kill = len(cache)
    assert 0 < completed_before_kill < len(factors)  # died mid-grid

    cells = sf_cells(tiny_trace, factors)
    resumed = run_grid(cells, cache=cache)  # fault gone: plain simulate
    assert resumed.cache_hits == completed_before_kill
    assert resumed.executed == len(factors) - completed_before_kill
    assert not resumed.failures and not resumed.counters

    serial = run_grid(cells)  # uninterrupted reference
    assert list(resumed.results) == list(serial.results)
    for key in serial.results:
        assert schedule_signature(resumed.results[key]) == schedule_signature(
            serial.results[key]
        ), key

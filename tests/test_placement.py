"""SS processor placement: victims' processors first, pinned avoided."""

from __future__ import annotations

import pytest

from repro.cluster.machine import Cluster
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.sim.driver import SchedulingSimulation
from tests.conftest import make_job


def bound_scheduler(n_procs=8):
    sched = SelectiveSuspensionScheduler(suspension_factor=2.0)
    sim = SchedulingSimulation(Cluster(n_procs), sched)
    sched.bind(sim)
    return sched, sim


def test_place_prefers_preferred_set():
    sched, sim = bound_scheduler()
    job = make_job(job_id=1, procs=3)
    chosen = sched._place(job, preferred=frozenset({5, 6, 7}))
    assert chosen == frozenset({5, 6, 7})


def test_place_falls_back_beyond_preferred():
    sched, sim = bound_scheduler()
    job = make_job(job_id=1, procs=4)
    chosen = sched._place(job, preferred=frozenset({6, 7}))
    assert {6, 7} <= chosen
    assert len(chosen) == 4


def test_place_avoids_pinned_processors():
    sched, sim = bound_scheduler()
    # create a suspended job pinned to {0, 1}
    pinned_job = make_job(job_id=0, submit=0.0, run=100.0, procs=2)
    pinned_job.mark_submitted(0.0)
    sim._queued[pinned_job.job_id] = pinned_job
    sim.start_job(pinned_job, procs=frozenset({0, 1}))
    sim.suspend_job(pinned_job)

    fresh = make_job(job_id=1, procs=3)
    chosen = sched._place(fresh)
    assert not (chosen & {0, 1}), "fresh start must avoid the pinned set"


def test_place_uses_pinned_as_last_resort():
    sched, sim = bound_scheduler(n_procs=4)
    pinned_job = make_job(job_id=0, submit=0.0, run=100.0, procs=2)
    pinned_job.mark_submitted(0.0)
    sim._queued[pinned_job.job_id] = pinned_job
    sim.start_job(pinned_job, procs=frozenset({0, 1}))
    sim.suspend_job(pinned_job)

    wide = make_job(job_id=1, procs=4)  # cannot avoid the pinned pair
    chosen = sched._place(wide)
    assert chosen == frozenset({0, 1, 2, 3})


def test_pinned_procs_union_of_suspended_sets():
    sched, sim = bound_scheduler()
    for i, procs in enumerate(({0, 1}, {4, 5})):
        j = make_job(job_id=i, submit=0.0, run=100.0, procs=2)
        j.mark_submitted(0.0)
        sim._queued[j.job_id] = j
        sim.start_job(j, procs=frozenset(procs))
        sim.suspend_job(j)
    assert sched._pinned_procs() == {0, 1, 4, 5}


def test_explicit_start_placement_via_driver():
    _, sim = bound_scheduler()
    job = make_job(job_id=9, submit=0.0, run=10.0, procs=2)
    job.mark_submitted(0.0)
    sim._queued[job.job_id] = job
    got = sim.start_job(job, procs=frozenset({6, 7}))
    assert got == frozenset({6, 7})


def test_explicit_start_wrong_count_rejected():
    from repro.sim.engine import SimulationError

    _, sim = bound_scheduler()
    job = make_job(job_id=9, submit=0.0, run=10.0, procs=2)
    job.mark_submitted(0.0)
    sim._queued[job.job_id] = job
    with pytest.raises(SimulationError, match="processors"):
        sim.start_job(job, procs=frozenset({1, 2, 3}))


def test_resume_placement_must_match_original():
    from repro.sim.engine import SimulationError

    _, sim = bound_scheduler()
    job = make_job(job_id=9, submit=0.0, run=100.0, procs=2)
    job.mark_submitted(0.0)
    sim._queued[job.job_id] = job
    sim.start_job(job, procs=frozenset({2, 3}))
    sim.suspend_job(job)
    with pytest.raises(SimulationError, match="original"):
        sim.start_job(job, procs=frozenset({4, 5}))
    got = sim.start_job(job, procs=frozenset({2, 3}))
    assert got == frozenset({2, 3})

"""Timeline reconstruction and Gantt rendering from traces.

:mod:`repro.analysis.timeline` consumes recorded event streams only --
these tests drive it both with hand-built streams (exact interval
arithmetic) and with real traced simulations (conservation against the
driver's busy integral).
"""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.timeline import (
    GANTT_GLYPHS,
    OccupancyInterval,
    ascii_gantt,
    occupancy_intervals,
    timeline_csv,
)
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.experiments.runner import simulate
from repro.obs import InMemoryRecorder
from repro.workload.synthetic import generate_trace


def ev(t, etype, job, **data):
    return {"t": t, "type": etype, "job": job, **data}


SMALL_STREAM = [
    ev(0.0, "run_begin", None, schema=1, n_procs=8, n_jobs=2),
    ev(0.0, "arrival", 1, procs=4, run_time=30.0, estimate=30.0),
    ev(0.0, "start", 1, width=4, via=None),
    ev(5.0, "arrival", 2, procs=4, run_time=8.0, estimate=40.0),
    ev(5.0, "backfill_start", 2, width=4, via="backfill"),
    ev(10.0, "suspend", 1, width=4, preemptor=2),
    ev(13.0, "finish", 2),
    ev(13.0, "resume", 1, width=4, via=None),
    ev(33.0, "finish", 1),
]


def test_intervals_from_hand_built_stream():
    ivs = occupancy_intervals(SMALL_STREAM)
    assert ivs == [
        OccupancyInterval(1, 0.0, 10.0, 4, "suspend", via=None, resumed=False),
        OccupancyInterval(2, 5.0, 13.0, 4, "finish", via="backfill", resumed=False),
        OccupancyInterval(1, 13.0, 33.0, 4, "finish", via=None, resumed=True),
    ]
    assert ivs[0].duration == 10.0
    assert ivs[0].area == 40.0


def test_intervals_sorted_by_start_then_job():
    ivs = occupancy_intervals(SMALL_STREAM)
    keys = [(iv.start, iv.job_id) for iv in ivs]
    assert keys == sorted(keys)


def test_intervals_reject_double_dispatch():
    events = [ev(0.0, "start", 1, width=2), ev(1.0, "resume", 1, width=2)]
    with pytest.raises(ValueError, match="dispatched twice"):
        occupancy_intervals(events)


def test_intervals_reject_ghost_release():
    with pytest.raises(ValueError, match="not running"):
        occupancy_intervals([ev(3.0, "suspend", 9, width=2)])


def test_intervals_reject_unreleased_job():
    with pytest.raises(ValueError, match="still on processors"):
        occupancy_intervals([ev(0.0, "start", 1, width=2)])


def test_csv_round_trips_exactly():
    ivs = occupancy_intervals(SMALL_STREAM)
    text = timeline_csv(ivs)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == len(ivs)
    for row, iv in zip(rows, ivs, strict=True):
        assert int(row["job"]) == iv.job_id
        assert float(row["start"]) == iv.start  # repr round-trip is exact
        assert float(row["end"]) == iv.end
        assert float(row["area"]) == iv.area
        assert row["end_type"] == iv.end_type
        assert row["via"] == (iv.via or "")
        assert row["resumed"] == ("1" if iv.resumed else "0")


def test_gantt_glyphs_tell_the_period_story():
    chart = ascii_gantt(occupancy_intervals(SMALL_STREAM), width=33)
    lines = chart.splitlines()
    assert "legend" in lines[1]
    row1 = next(line for line in lines if line.startswith("1 |"))
    row2 = next(line for line in lines if line.startswith("2 |"))
    # job 1: suspended period, then queued gap, then ran to finish
    assert GANTT_GLYPHS["suspend"] in row1
    assert GANTT_GLYPHS["finish"] in row1
    assert GANTT_GLYPHS["waiting"] in row1
    assert row1.index("s") < row1.index(".") < row1.rindex("#")
    # job 2 never waited after dispatch and never got suspended
    assert "s" not in row2 and "." not in row2


def test_gantt_arrivals_extend_waiting_region():
    ivs = occupancy_intervals(SMALL_STREAM)
    with_arrivals = ascii_gantt(ivs, width=33, arrivals={1: 0.0, 2: 5.0})
    assert with_arrivals.count(".") >= ascii_gantt(ivs, width=33).count(".")


def test_gantt_truncation_note():
    ivs = occupancy_intervals(SMALL_STREAM)
    chart = ascii_gantt(ivs, width=20, max_jobs=1)
    assert "1 more job(s) not shown" in chart


def test_gantt_empty_and_bad_width():
    assert ascii_gantt([]) == "(empty timeline)"
    with pytest.raises(ValueError, match="width"):
        ascii_gantt(occupancy_intervals(SMALL_STREAM), width=0)


def test_kill_periods_get_their_own_glyph():
    events = [
        ev(0.0, "start", 3, width=2, via="speculative"),
        ev(4.0, "kill", 3, width=2),
        ev(6.0, "start", 3, width=2, via=None),
        ev(10.0, "finish", 3),
    ]
    ivs = occupancy_intervals(events)
    assert ivs[0].end_type == "kill" and ivs[0].via == "speculative"
    chart = ascii_gantt(ivs, width=20)
    assert GANTT_GLYPHS["kill"] in chart


def test_real_trace_conserves_busy_area():
    """Summed interval areas must equal the driver's busy integral --

    the timeline is a third derivation of the same conservation law
    (driver accounting, trace replay, interval reconstruction)."""
    jobs = generate_trace("SDSC", n_jobs=200, seed=9)
    recorder = InMemoryRecorder()
    result = simulate(
        jobs,
        SelectiveSuspensionScheduler(suspension_factor=1.5),
        128,
        recorder=recorder,
    )
    ivs = occupancy_intervals(recorder.dicts())
    assert result.total_suspensions > 0
    assert sum(1 for iv in ivs if iv.end_type == "suspend") == result.total_suspensions
    assert sum(1 for iv in ivs if iv.resumed) >= result.total_suspensions > 0
    total_area = sum(iv.area for iv in ivs)
    assert abs(total_area - result.busy_proc_seconds) <= 1e-6 * max(total_area, 1.0)
    # widths on re-dispatch match the original width (local restart)
    by_job: dict[int, set[int]] = {}
    for iv in ivs:
        by_job.setdefault(iv.job_id, set()).add(iv.width)
    assert all(len(widths) == 1 for widths in by_job.values())

"""Tunable Selective Suspension: per-category preemption limits."""

from __future__ import annotations

import pytest

from repro.core.tss import (
    CategoryLimits,
    TunableSelectiveSuspensionScheduler,
    limits_from_result,
)
from repro.metrics.aggregate import per_category_worst
from repro.schedulers.easy import EasyBackfillScheduler
from repro.workload.categories import classify_sixteen_way
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def test_limit_protects_high_xfactor_victim():
    """A victim whose xfactor exceeds its category limit cannot be
    suspended, even if the SF threshold is met."""
    # victim waits 4000 s behind a protected blocker, so it starts with
    # a frozen xfactor ~ 11 -- far above its category limit of 2.
    victim = make_job(job_id=0, submit=0.0, run=400.0, procs=4)  # (VS, N)
    blocker = make_job(job_id=1, submit=0.0, run=4000.0, procs=4)  # (L, N)
    preemptor = make_job(job_id=2, submit=4100.0, run=10.0, procs=4)
    limits = CategoryLimits(
        table={
            classify_sixteen_way(victim): 2.0,
            classify_sixteen_way(blocker): 0.5,  # blocker always protected
        }
    )
    sched = TunableSelectiveSuspensionScheduler(
        suspension_factor=1.0, limits=limits, preemption_interval=10.0
    )
    run_sim([blocker, victim, preemptor], sched, n_procs=4)
    # victim started at 4000 with xfactor ~11 > limit 2 => protected
    assert blocker.suspension_count == 0
    assert victim.first_start_time == pytest.approx(4000.0)
    assert victim.suspension_count == 0
    assert preemptor.first_start_time >= victim.finish_time


def test_unprotected_victim_still_suspended():
    victim = make_job(job_id=0, submit=0.0, run=4000.0, procs=4)
    preemptor = make_job(job_id=1, submit=1.0, run=10.0, procs=4)
    limits = CategoryLimits(table={classify_sixteen_way(victim): 100.0})
    sched = TunableSelectiveSuspensionScheduler(
        suspension_factor=1.5, limits=limits, preemption_interval=10.0
    )
    run_sim([victim, preemptor], sched, n_procs=4)
    assert victim.suspension_count == 1


def test_missing_category_means_unprotected():
    limits = CategoryLimits(table={})
    job = make_job(run=100.0, procs=1)
    assert limits.limit_for(job) == float("inf")


def test_online_limits_learn_from_finished_jobs():
    limits = CategoryLimits(online=True, margin=1.5)
    j = make_job(job_id=0, submit=0.0, run=100.0, procs=1)
    j.mark_submitted(0.0)
    j.mark_started(100.0, frozenset({0}))  # waited 100 => slowdown 2
    j.mark_finished(200.0)
    limits.observe(j)
    same_cat = make_job(job_id=1, run=100.0, procs=1)
    assert limits.limit_for(same_cat) == pytest.approx(3.0)  # 1.5 x 2.0


def test_online_fallback_to_overall_average():
    limits = CategoryLimits(online=True, margin=1.5)
    j = make_job(job_id=0, submit=0.0, run=100.0, procs=1)
    j.mark_submitted(0.0)
    j.mark_started(100.0, frozenset({0}))
    j.mark_finished(200.0)
    limits.observe(j)
    other_cat = make_job(job_id=1, run=30_000.0, procs=64)
    assert limits.limit_for(other_cat) == pytest.approx(3.0)


def test_offline_observe_is_noop():
    limits = CategoryLimits(table={("VS", "Seq"): 5.0})
    j = make_job(job_id=0, submit=0.0, run=100.0, procs=1)
    j.mark_submitted(0.0)
    j.mark_started(0.0, frozenset({0}))
    j.mark_finished(100.0)
    limits.observe(j)
    assert limits.table == {("VS", "Seq"): 5.0}


def test_limits_from_result_margin():
    jobs = []
    for i in range(4):
        j = make_job(job_id=i, submit=0.0, run=100.0, procs=1)
        j.mark_submitted(0.0)
        j.mark_started(100.0, frozenset({i}))  # slowdown 2 for all
        j.mark_finished(200.0)
        jobs.append(j)
    from repro.sim.driver import SimulationResult

    baseline = SimulationResult(
        jobs=jobs,
        n_procs=8,
        scheduler="NS",
        busy_proc_seconds=400.0,
        makespan=200.0,
        total_suspensions=0,
    )
    limits = limits_from_result(baseline, margin=1.5)
    assert limits.table[("VS", "Seq")] == pytest.approx(3.0)
    assert not limits.online


def test_tss_drains_real_mix(sdsc_trace_small):
    from repro.workload.archive import SDSC

    jobs = [j.copy_static() for j in sdsc_trace_small]
    sched = TunableSelectiveSuspensionScheduler(suspension_factor=2.0)
    result = run_sim(jobs, sched, n_procs=SDSC.n_procs)
    assert all(j.state is JobState.FINISHED for j in result.jobs)


def test_tss_suspends_no_more_than_ss(sdsc_trace_small):
    """Limits can only remove preemption opportunities."""
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.workload.archive import SDSC

    plain = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    ns = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        EasyBackfillScheduler(),
        n_procs=SDSC.n_procs,
    )
    tuned = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        TunableSelectiveSuspensionScheduler(
            suspension_factor=2.0, limits=limits_from_result(ns)
        ),
        n_procs=SDSC.n_procs,
    )
    assert tuned.total_suspensions <= plain.total_suspensions


def test_tss_calibrated_improves_some_worst_case(sdsc_trace_small):
    """Section IV-E: TSS improves worst-case metrics for several
    categories without (much) hurting the rest."""
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.workload.archive import SDSC

    ns = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        EasyBackfillScheduler(),
        n_procs=SDSC.n_procs,
    )
    plain = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    tuned = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        TunableSelectiveSuspensionScheduler(
            suspension_factor=2.0, limits=limits_from_result(ns)
        ),
        n_procs=SDSC.n_procs,
    )
    plain_worst = per_category_worst(plain.jobs)
    tuned_worst = per_category_worst(tuned.jobs)
    improved = sum(
        1
        for cat in tuned_worst
        if cat in plain_worst and tuned_worst[cat][1] <= plain_worst[cat][1] * 1.05
    )
    # "improves ... without affecting the others": most categories no worse
    assert improved >= len(tuned_worst) * 0.6


def test_tss_name_reflects_mode():
    assert "online" in TunableSelectiveSuspensionScheduler().name
    tuned = TunableSelectiveSuspensionScheduler(limits=CategoryLimits(table={}))
    assert "calibrated" in tuned.name

"""repro-lint: per-rule fixtures, suppression/baseline mechanics, CLI.

Each RPR rule gets at least one *positive* fixture (the bug shape it
exists for -- RPR001's is the PR-2 ``_try_resume`` hash-order bug) and
one *negative* (the sanctioned pattern that must stay quiet).  The
meta-test at the bottom pins the deliverable: the live ``src/repro``
tree is clean under the shipped baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.engine import analyze_source, discover_files
from repro.lint.findings import Finding, assign_occurrences
from repro.lint.suppress import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]


def findings_for(
    source: str, relpath: str = "core/fixture.py", select: set[str] | None = None
) -> list[Finding]:
    result = analyze_source(
        relpath, textwrap.dedent(source), frozenset(select) if select else None
    )
    return result.findings + result.errors


def rules_of(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# RPR001 -- unordered iteration in decision paths
# ----------------------------------------------------------------------
class TestRPR001:
    # the PR-2 _try_resume bug, distilled: resume order steered by the
    # hash order of a set of suspended-job owners
    TRY_RESUME_BUG = """
        class SelectiveSuspensionScheduler:
            def _try_resume(self) -> None:
                owners = {j.owner_id for j in self.suspended}
                for owner in owners:
                    self._resume_one(owner)
    """

    def test_try_resume_hash_order_bug_fires(self) -> None:
        found = findings_for(self.TRY_RESUME_BUG, "core/selective_suspension.py")
        assert "RPR001" in rules_of(found)

    def test_sorted_wrapper_is_clean(self) -> None:
        fixed = self.TRY_RESUME_BUG.replace("in owners:", "in sorted(owners):")
        assert "RPR001" not in rules_of(
            findings_for(fixed, "core/selective_suspension.py")
        )

    def test_order_insensitive_folds_are_clean(self) -> None:
        src = """
            def width(jobs: set) -> int:
                total = sum(j.procs for j in jobs)
                biggest = max(j.procs for j in jobs)
                return total + biggest + len(jobs)
        """
        assert findings_for(src, "schedulers/x.py", select={"RPR001"}) == []

    def test_membership_test_is_clean(self) -> None:
        src = """
            def is_running(self, job) -> bool:
                return job in {j for j in self.running}
        """
        assert findings_for(src, "sim/x.py", select={"RPR001"}) == []

    def test_dict_view_iteration_fires(self) -> None:
        src = """
            def pick(self):
                for job_id, cols in self.columns.items():
                    return job_id
        """
        assert "RPR001" in rules_of(findings_for(src, "schedulers/gang2.py"))

    def test_list_materialises_hash_order(self) -> None:
        src = """
            def victims(self, pool: set):
                return list(pool)
        """
        assert "RPR001" in rules_of(findings_for(src, "core/x.py"))

    def test_non_decision_path_is_exempt(self) -> None:
        found = findings_for(self.TRY_RESUME_BUG, "analysis/report.py")
        assert "RPR001" not in rules_of(found)

    def test_set_rebuild_is_clean(self) -> None:
        src = """
            def used(self) -> set:
                return set(c for cols in self.columns.values() for c in cols)
        """
        assert findings_for(src, "schedulers/x.py", select={"RPR001"}) == []

    # -- PR-4: the bitmask kernel joins the patrol ---------------------
    def test_cluster_path_is_patrolled(self) -> None:
        # iterating a set in cluster/ fires exactly like core/ --
        # allocation choices steer the schedule
        src = """
            def pack(self, count: int):
                for p in self.free_set():
                    if count == 0:
                        break
                    self._claim(p)
                    count -= 1
        """
        assert "RPR001" in rules_of(findings_for(src, "cluster/machine.py"))

    def test_mask_iteration_helpers_are_clean(self) -> None:
        # iter_bits/mask_to_ids walk an *integer* lowest-bit-first:
        # ascending by construction, nothing hash-ordered to flag
        src = """
            from repro.cluster.bitset import iter_bits, mask_to_ids

            def claim(self, mask: int, owner: int) -> None:
                for p in iter_bits(mask):
                    self._proc_owner[p] = owner
                ids = list(mask_to_ids(mask))
        """
        assert findings_for(src, "cluster/machine.py", select={"RPR001"}) == []

    def test_mask_from_ids_is_order_insensitive_consumer(self) -> None:
        # folding a set into a bitmask is commutative OR; feeding a set
        # into mask_from_ids cannot leak hash order into the schedule
        src = """
            from repro.cluster.bitset import mask_from_ids

            def pin(self, procs: set) -> int:
                return mask_from_ids(p for p in procs)
        """
        assert findings_for(src, "core/sweep.py", select={"RPR001"}) == []

    def test_materialising_a_set_in_cluster_path_fires(self) -> None:
        src = """
            def snapshot(self):
                return tuple(self.free_set())
        """
        assert "RPR001" in rules_of(findings_for(src, "cluster/snapshot.py"))


# ----------------------------------------------------------------------
# RPR002 -- nondeterminism sources
# ----------------------------------------------------------------------
class TestRPR002:
    def test_wall_clock_fires(self) -> None:
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert "RPR002" in rules_of(findings_for(src))

    def test_global_random_fires(self) -> None:
        src = """
            import random

            def jitter():
                return random.random()
        """
        assert "RPR002" in rules_of(findings_for(src))

    def test_seeded_random_instance_is_clean(self) -> None:
        src = """
            import random

            def make_rng(seed: int):
                return random.Random(seed)
        """
        assert findings_for(src, select={"RPR002"}) == []

    def test_argless_random_instance_fires(self) -> None:
        src = """
            import random

            def make_rng():
                return random.Random()
        """
        assert "RPR002" in rules_of(findings_for(src))

    def test_unseeded_default_rng_fires(self) -> None:
        src = """
            import numpy as np

            def rng():
                return np.random.default_rng()
        """
        assert "RPR002" in rules_of(findings_for(src))

    def test_seeded_default_rng_is_clean(self) -> None:
        src = """
            import numpy as np

            def rng(seed: int):
                return np.random.default_rng(seed)
        """
        assert findings_for(src, select={"RPR002"}) == []

    def test_legacy_numpy_global_fires(self) -> None:
        src = """
            import numpy.random

            def sample(n):
                return numpy.random.exponential(1.0, n)
        """
        assert "RPR002" in rules_of(findings_for(src))

    def test_from_import_wallclock_fires(self) -> None:
        src = """
            from time import time

            def stamp():
                return time()
        """
        assert "RPR002" in rules_of(findings_for(src))


# ----------------------------------------------------------------------
# RPR003 -- exact float equality on time-like expressions
# ----------------------------------------------------------------------
class TestRPR003:
    def test_time_equality_fires(self) -> None:
        src = """
            def stale(job, now: float) -> bool:
                return job.expected_end == now
        """
        assert "RPR003" in rules_of(findings_for(src)), "expected_end == now"

    def test_xfactor_inequality_fires(self) -> None:
        src = """
            def changed(a, b) -> bool:
                return a.xfactor != b.xfactor
        """
        assert "RPR003" in rules_of(findings_for(src))

    def test_ordering_comparison_is_clean(self) -> None:
        src = """
            def overdue(job, now: float) -> bool:
                return job.expected_end <= now
        """
        assert findings_for(src, select={"RPR003"}) == []

    def test_string_comparison_is_clean(self) -> None:
        # the heuristic must not fire when one side is a non-numeric
        # constant: `mode == "time"` is not a float comparison
        src = """
            def is_time_mode(mode: str) -> bool:
                return mode == "time"
        """
        assert findings_for(src, select={"RPR003"}) == []

    def test_non_time_names_are_clean(self) -> None:
        src = """
            def same_owner(a, b) -> bool:
                return a.owner_id == b.owner_id
        """
        assert findings_for(src, select={"RPR003"}) == []


# ----------------------------------------------------------------------
# RPR004 -- cross-file protocol conformance (via lint_paths on a tree)
# ----------------------------------------------------------------------
class TestRPR004:
    def lint_tree(self, tmp_path: Path, files: dict[str, str]) -> list[Finding]:
        for rel, src in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(textwrap.dedent(src), encoding="utf-8")
        report = lint_paths([tmp_path], select=["RPR004"])
        return report.active

    def test_missing_scheme_id_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "schedulers/bad.py": """
                    class BadScheduler(Scheduler):
                        def on_arrival(self, job):
                            pass
                """
            },
        )
        assert any("scheme_id" in f.message for f in found)

    def test_conforming_scheduler_is_clean(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "schedulers/good.py": """
                    class GoodScheduler(Scheduler):
                        scheme_id = "good"

                        def config(self):
                            return {"scheme": self.scheme_id}
                """
            },
        )
        assert found == []

    def test_init_knobs_without_config_override_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "schedulers/knobs.py": """
                    class KnobScheduler(Scheduler):
                        scheme_id = "knobs"

                        def __init__(self, suspension_factor: float):
                            self.sf = suspension_factor
                """
            },
        )
        assert any("config() override" in f.message for f in found)

    def test_config_with_required_params_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "schedulers/sig.py": """
                    class SigScheduler(Scheduler):
                        scheme_id = "sig"

                        def config(self, extra):
                            return {"scheme": self.scheme_id, "extra": extra}
                """
            },
        )
        assert any("required parameters" in f.message for f in found)

    def test_recorder_without_close_or_enabled_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "obs/half.py": """
                    class HalfRecorder:
                        def record(self, event):
                            self.rows.append(event)
                """
            },
        )
        msgs = " ".join(f.message for f in found)
        assert "close()" in msgs and "enabled" in msgs

    def test_orphan_event_type_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "obs/events.py": """
                    EVENT_TYPES = ("arrival", "ghost")

                    class Tracer:
                        def arrival(self, t, job):
                            self.counters.note(t)
                            self._emit("arrival", t)
                """
            },
        )
        assert any("ghost" in f.message for f in found)

    def test_emission_without_counters_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "obs/events.py": """
                    EVENT_TYPES = ("arrival",)

                    class Tracer:
                        def arrival(self, t, job):
                            self._emit("arrival", t)
                """
            },
        )
        assert any("TraceCounters" in f.message for f in found)

    def test_unknown_decision_action_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "obs/events.py": """
                    EVENT_TYPES = ("decision",)
                    DECISION_ACTIONS = ("preempt",)

                    class Tracer:
                        def decision(self, t, action):
                            self.counters.note(t)
                            self._emit("decision", t)
                """,
                "schedulers/rogue.py": """
                    def plan(self, t):
                        self.tracer.decision(t, "yolo")
                """,
            },
        )
        assert any("'yolo'" in f.message for f in found)

    def test_unknown_tracer_method_fires(self, tmp_path: Path) -> None:
        found = self.lint_tree(
            tmp_path,
            {
                "obs/events.py": """
                    EVENT_TYPES = ("arrival",)

                    class Tracer:
                        def arrival(self, t, job):
                            self.counters.note(t)
                            self._emit("arrival", t)
                """,
                "sim/rogue.py": """
                    def go(self, t):
                        self.tracer.arival(t, None)
                """,
            },
        )
        assert any("arival" in f.message for f in found)


# ----------------------------------------------------------------------
# RPR005 -- trace/cache purity
# ----------------------------------------------------------------------
class TestRPR005:
    def test_config_without_scheme_key_fires(self) -> None:
        src = """
            class FooScheduler:
                scheme_id = "foo"

                def config(self):
                    return {"margin": self.margin}
        """
        assert "RPR005" in rules_of(findings_for(src, "schedulers/foo.py"))

    def test_lambda_in_config_fires(self) -> None:
        src = """
            class FooScheduler:
                def config(self):
                    return {"scheme": "foo", "key": lambda j: j.procs}
        """
        assert "RPR005" in rules_of(findings_for(src, "schedulers/foo.py"))

    def test_set_in_config_fires(self) -> None:
        src = """
            class FooScheduler:
                def config(self):
                    return {"scheme": "foo", "cats": {"a", "b"}}
        """
        assert "RPR005" in rules_of(findings_for(src, "schedulers/foo.py"))

    def test_driver_state_in_config_fires(self) -> None:
        src = """
            class FooScheduler:
                def config(self):
                    return {"scheme": "foo", "now": self.driver.now}
        """
        assert "RPR005" in rules_of(findings_for(src, "schedulers/foo.py"))

    def test_clean_config_passes(self) -> None:
        src = """
            class FooScheduler:
                def config(self):
                    return {"scheme": "foo", "margin": float(self.margin)}
        """
        assert findings_for(src, "schedulers/foo.py", select={"RPR005"}) == []

    def test_lambda_to_pool_fires(self) -> None:
        src = """
            def run_all(pool, cells):
                return [pool.submit(lambda c: c.run(), c) for c in cells]
        """
        assert "RPR005" in rules_of(findings_for(src, "experiments/x.py"))

    def test_nested_function_to_pool_fires(self) -> None:
        src = """
            def run_all(pool, cells):
                def work(c):
                    return c.run()
                return [pool.submit(work, c) for c in cells]
        """
        assert "RPR005" in rules_of(findings_for(src, "experiments/x.py"))

    def test_module_level_worker_is_clean(self) -> None:
        src = """
            def work(c):
                return c.run()

            def run_all(pool, cells):
                return [pool.submit(work, c) for c in cells]
        """
        assert findings_for(src, "experiments/x.py", select={"RPR005"}) == []

    # -- cache read-path mutations ------------------------------------
    def test_unlink_in_cache_get_fires(self) -> None:
        # the historical bug shape: "clean up" corrupt entries on read
        src = """
            class ResultCache:
                def get(self, fp):
                    path = self._path(fp)
                    try:
                        return load(path)
                    except Exception:
                        path.unlink()
                        return None
        """
        found = findings_for(src, "experiments/cache.py", select={"RPR005"})
        assert found and "read path" in found[0].message

    def test_quarantine_rename_in_cache_get_is_clean(self) -> None:
        src = """
            class ResultCache:
                def get(self, fp):
                    path = self._path(fp)
                    try:
                        return load(path)
                    except Exception:
                        path.rename(path.with_name(path.name + ".corrupt"))
                        return None
        """
        assert findings_for(src, "experiments/cache.py", select={"RPR005"}) == []

    def test_non_quarantine_rename_in_cache_get_fires(self) -> None:
        src = """
            class ResultCache:
                def get(self, fp):
                    path = self._path(fp)
                    try:
                        return load(path)
                    except Exception:
                        path.rename(path.with_suffix(".bak"))
                        return None
        """
        assert "RPR005" in rules_of(
            findings_for(src, "experiments/cache.py", select={"RPR005"})
        )

    def test_mutation_in_read_path_helper_fires(self) -> None:
        # helpers reached from get() are part of the read path too
        src = """
            class ResultCache:
                def get(self, fp):
                    try:
                        return load(self._path(fp))
                    except Exception:
                        self._drop(self._path(fp))
                        return None

                def _drop(self, path):
                    path.unlink()
        """
        assert "RPR005" in rules_of(
            findings_for(src, "experiments/cache.py", select={"RPR005"})
        )

    def test_write_path_mutations_are_clean(self) -> None:
        src = """
            class ResultCache:
                def get(self, fp):
                    return load(self._path(fp))

                def put(self, fp, result):
                    os.replace(tmp, self._path(fp))

                def clear(self):
                    for p in self.root.glob("*/*.pkl"):
                        p.unlink()
        """
        assert findings_for(src, "experiments/cache.py", select={"RPR005"}) == []

    def test_non_cache_class_read_methods_exempt(self) -> None:
        src = """
            class Workspace:
                def get(self, name):
                    path = self.root / name
                    path.unlink()
                    return path
        """
        assert findings_for(src, "experiments/x.py", select={"RPR005"}) == []


# ----------------------------------------------------------------------
# RPR006 -- mutable defaults / shared class-level state
# ----------------------------------------------------------------------
class TestRPR006:
    def test_mutable_default_argument_fires(self) -> None:
        src = """
            def plan(jobs, seen=[]):
                seen.extend(jobs)
                return seen
        """
        assert "RPR006" in rules_of(findings_for(src))

    def test_class_level_mutable_fires(self) -> None:
        src = """
            class Sched:
                pending = []
        """
        assert "RPR006" in rules_of(findings_for(src))

    def test_none_default_is_clean(self) -> None:
        src = """
            def plan(jobs, seen=None):
                seen = seen if seen is not None else []
                return seen
        """
        assert findings_for(src, select={"RPR006"}) == []

    def test_dataclass_field_is_clean(self) -> None:
        src = """
            from dataclasses import dataclass, field

            @dataclass
            class Sched:
                pending: list = field(default_factory=list)
                __slots__ = ("pending",)
        """
        assert findings_for(src, select={"RPR006"}) == []


# ----------------------------------------------------------------------
# suppression directives
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_justified_inline_suppresses(self) -> None:
        src = """
            def plan(pool: set):
                return list(pool)  # repro-lint: disable=RPR001 -- fixture: order provably unused
        """
        result = analyze_source("core/x.py", textwrap.dedent(src))
        assert result.findings == []
        assert result.suppressed == 1

    def test_justified_standalone_covers_next_line(self) -> None:
        src = """
            def plan(pool: set):
                # repro-lint: disable=RPR001 -- fixture: order provably unused
                return list(pool)
        """
        result = analyze_source("core/x.py", textwrap.dedent(src))
        assert result.findings == []
        assert result.suppressed == 1

    def test_unjustified_directive_does_not_suppress(self) -> None:
        src = """
            def plan(pool: set):
                return list(pool)  # repro-lint: disable=RPR001
        """
        result = analyze_source("core/x.py", textwrap.dedent(src))
        # the RPR001 stays active AND the naked directive is RPR000
        assert "RPR001" in {f.rule for f in result.findings}
        assert any(
            e.rule == "RPR000" and "justification" in e.message for e in result.errors
        )

    def test_unknown_rule_id_is_reported(self) -> None:
        src = "x = 1  # repro-lint: disable=RPR999x -- nonsense\n"
        supp = parse_suppressions(src, "x.py")
        assert supp.errors and "unknown rule id" in supp.errors[0].message

    def test_disable_all_with_justification(self) -> None:
        src = """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=all -- fixture: generated shim
        """
        result = analyze_source("core/x.py", textwrap.dedent(src))
        assert result.findings == []
        assert result.suppressed >= 1

    def test_wrong_rule_does_not_suppress_others(self) -> None:
        src = """
            def plan(pool: set):
                return list(pool)  # repro-lint: disable=RPR003 -- fixture: wrong rule listed
        """
        result = analyze_source("core/x.py", textwrap.dedent(src))
        assert "RPR001" in {f.rule for f in result.findings}


# ----------------------------------------------------------------------
# baseline mechanics
# ----------------------------------------------------------------------
class TestBaseline:
    SRC = """\
def stale(job, now: float) -> bool:
    return job.expected_end == now
"""

    def write_tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "mod.py").write_text(self.SRC, encoding="utf-8")
        return tmp_path

    def test_unjustified_baseline_entry_is_a_finding(self, tmp_path: Path) -> None:
        root = self.write_tree(tmp_path)
        report = lint_paths([root])
        (finding,) = report.active
        bl = Baseline(path=str(tmp_path / "bl.json"))
        bl.absorb([finding])
        bl.save()

        report2 = lint_paths([root], baseline=Baseline.load(bl.path))
        assert any(f.rule == "RPR000" for f in report2.active)

    def test_justified_baseline_entry_silences(self, tmp_path: Path) -> None:
        root = self.write_tree(tmp_path)
        report = lint_paths([root])
        (finding,) = report.active
        bl = Baseline(path=str(tmp_path / "bl.json"))
        bl.entries[finding.fingerprint()] = Baseline.entry_for(
            finding, "fixture: reviewed, exact identity comparison"
        )
        bl.save()

        report2 = lint_paths([root], baseline=Baseline.load(bl.path))
        assert report2.active == []
        assert len(report2.baselined) == 1
        assert report2.exit_code == 0

    def test_fingerprint_survives_line_drift(self, tmp_path: Path) -> None:
        root = self.write_tree(tmp_path)
        (finding,) = lint_paths([root]).active
        # prepend unrelated code: the line number moves, identity does not
        mod = root / "core" / "mod.py"
        mod.write_text("import math\n\n\n" + self.SRC, encoding="utf-8")
        (moved,) = lint_paths([root]).active
        assert moved.line != finding.line
        assert moved.fingerprint() == finding.fingerprint()

    def test_stale_entries_are_reported(self, tmp_path: Path) -> None:
        root = self.write_tree(tmp_path)
        (finding,) = lint_paths([root]).active
        bl = Baseline(path=str(tmp_path / "bl.json"))
        bl.entries[finding.fingerprint()] = Baseline.entry_for(finding, "reviewed")
        bl.save()
        # fix the offending line; the baseline entry goes stale
        (root / "core" / "mod.py").write_text(
            "def stale(job, now: float) -> bool:\n"
            "    return job.expected_end <= now\n",
            encoding="utf-8",
        )
        report = lint_paths([root], baseline=Baseline.load(bl.path))
        assert report.active == []
        assert report.stale_baseline == [finding.fingerprint()]


# ----------------------------------------------------------------------
# engine: discovery, determinism, occurrence numbering
# ----------------------------------------------------------------------
class TestEngine:
    def test_parallel_equals_serial(self, tmp_path: Path) -> None:
        for i in range(6):
            sub = tmp_path / "core"
            sub.mkdir(exist_ok=True)
            (sub / f"m{i}.py").write_text(
                "import time\n\ndef f():\n    return time.time()\n",
                encoding="utf-8",
            )
        serial = lint_paths([tmp_path], jobs=1)
        parallel = lint_paths([tmp_path], jobs=3)
        assert [f.as_dict() for f in serial.active] == [
            f.as_dict() for f in parallel.active
        ]

    def test_discovery_is_sorted_and_skips_caches(self, tmp_path: Path) -> None:
        (tmp_path / "b.py").write_text("", encoding="utf-8")
        (tmp_path / "a.py").write_text("", encoding="utf-8")
        pyc = tmp_path / "__pycache__"
        pyc.mkdir()
        (pyc / "junk.py").write_text("", encoding="utf-8")
        rels = [rel for _, rel in discover_files([tmp_path])]
        assert rels == ["a.py", "b.py"]

    def test_syntax_error_is_a_finding_not_a_crash(self) -> None:
        result = analyze_source("core/broken.py", "def f(:\n")
        assert [f.rule for f in result.findings] == ["RPR000"]

    def test_occurrence_numbering_disambiguates_repeats(self) -> None:
        f = Finding(
            rule="RPR003", path="p.py", line=1, col=0, message="m", snippet="x == y"
        )
        g = Finding(
            rule="RPR003", path="p.py", line=9, col=0, message="m", snippet="x == y"
        )
        a, b = assign_occurrences([f, g])
        assert (a.occurrence, b.occurrence) == (0, 1)
        assert a.fingerprint() != b.fingerprint()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "m.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
        )
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        (bad / "m.py").write_text("def f():\n    return 0\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0

    def test_json_output_shape(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        core = tmp_path / "core"
        core.mkdir()
        (core / "m.py").write_text(
            "def stale(a, now):\n    return a.expected_end == now\n", encoding="utf-8"
        )
        code = lint_main([str(tmp_path), "--no-baseline", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["counts"]["active"] == 1
        assert doc["findings"][0]["rule"] == "RPR003"
        assert doc["findings"][0]["fingerprint"]

    def test_select_restricts_rules(self, tmp_path: Path) -> None:
        core = tmp_path / "core"
        core.mkdir()
        (core / "m.py").write_text(
            "import time\n\ndef f(a, now):\n"
            "    return time.time() if a.expected_end == now else 0\n",
            encoding="utf-8",
        )
        only_002 = lint_paths([tmp_path], select=["RPR002"])
        assert rules_of(only_002.active) == {"RPR002"}

    def test_list_rules(self, capsys: pytest.CaptureFixture) -> None:
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
            "RPR009",
        ):
            assert rule in out


# ----------------------------------------------------------------------
# the deliverable: the live tree is clean under the shipped baseline
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_repro_is_clean_under_shipped_baseline(self) -> None:
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        report = lint_paths([REPO_ROOT / "src" / "repro"], baseline=baseline)
        assert report.active == [], "\n".join(f.render() for f in report.active)
        assert report.exit_code == 0

    def test_shipped_baseline_has_no_stale_entries(self) -> None:
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        report = lint_paths([REPO_ROOT / "src" / "repro"], baseline=baseline)
        assert report.stale_baseline == []

    def test_every_shipped_baseline_entry_is_justified(self) -> None:
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        assert baseline.unjustified() == []

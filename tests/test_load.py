"""Load scaling (section VI's arrival-time division)."""

from __future__ import annotations

import pytest

from repro.workload.job import JobState
from repro.workload.load import scale_load
from tests.conftest import make_job


def test_submit_times_divided():
    jobs = [make_job(job_id=0, submit=0.0), make_job(job_id=1, submit=110.0)]
    scaled = scale_load(jobs, 1.1)
    assert scaled[0].submit_time == 0.0
    assert scaled[1].submit_time == pytest.approx(100.0)


def test_everything_else_unchanged():
    j = make_job(job_id=3, submit=50.0, run=200.0, procs=4, estimate=400.0, memory_mb=256)
    (s,) = scale_load([j], 2.0)
    assert (s.run_time, s.estimate, s.procs, s.memory_mb) == (200.0, 400.0, 4, 256)
    assert s.job_id == 3


def test_returns_fresh_copies():
    j = make_job(submit=100.0)
    j.mark_submitted(100.0)
    (s,) = scale_load([j], 1.0)
    assert s is not j
    assert s.state is JobState.PENDING


def test_order_preserved():
    jobs = [make_job(job_id=i, submit=10.0 * i) for i in range(5)]
    scaled = scale_load(jobs, 1.5)
    assert [j.job_id for j in scaled] == [0, 1, 2, 3, 4]
    submits = [j.submit_time for j in scaled]
    assert submits == sorted(submits)


def test_load_below_one_stretches():
    jobs = [make_job(submit=100.0)]
    (s,) = scale_load(jobs, 0.5)
    assert s.submit_time == 200.0


def test_identity_at_one():
    jobs = [make_job(submit=123.0)]
    (s,) = scale_load(jobs, 1.0)
    assert s.submit_time == 123.0


def test_rejects_nonpositive_factor():
    with pytest.raises(ValueError):
        scale_load([make_job()], 0.0)
    with pytest.raises(ValueError):
        scale_load([make_job()], -1.0)


def test_wait_clock_anchored_at_scaled_submit():
    """The copied job's wait clock must start at the new submit time."""
    jobs = [make_job(submit=1000.0, run=100.0)]
    (s,) = scale_load(jobs, 2.0)
    s.mark_submitted(500.0)
    assert s.waited(600.0) == pytest.approx(100.0)

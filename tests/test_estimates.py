"""Estimate models: accuracy invariants and mixture fractions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.estimates import (
    AccurateEstimates,
    InaccurateEstimates,
    PerfectWithNoise,
)

RUNTIMES = np.array([30.0, 600.0, 3600.0, 28800.0, 86400.0])


def rng():
    return np.random.default_rng(42)


def test_accurate_is_identity():
    est = AccurateEstimates().estimates(RUNTIMES, rng())
    assert np.array_equal(est, RUNTIMES)


def test_accurate_returns_copy():
    est = AccurateEstimates().estimates(RUNTIMES, rng())
    est[0] = -1
    assert RUNTIMES[0] == 30.0


def test_noise_bounded():
    model = PerfectWithNoise(noise=0.5)
    est = model.estimates(RUNTIMES, rng())
    assert np.all(est >= RUNTIMES)
    assert np.all(est <= RUNTIMES * 1.5 + 1e-9)


def test_noise_rejects_negative():
    with pytest.raises(ValueError):
        PerfectWithNoise(noise=-0.1)


def test_inaccurate_never_below_actual():
    runs = np.exp(rng().uniform(np.log(10), np.log(86400), size=5000))
    est = InaccurateEstimates().estimates(runs, rng())
    assert np.all(est >= runs)


def test_inaccurate_badly_fraction_approx():
    runs = np.full(20000, 600.0)
    model = InaccurateEstimates(badly_fraction=0.4, cap_seconds=None)
    est = model.estimates(runs, rng())
    frac_bad = np.mean(est > 2.0 * runs)
    assert 0.35 < frac_bad < 0.45


def test_inaccurate_zero_badly_fraction():
    runs = np.full(1000, 600.0)
    est = InaccurateEstimates(badly_fraction=0.0).estimates(runs, rng())
    assert np.all(est <= 2.0 * runs)


def test_inaccurate_all_badly_fraction():
    runs = np.full(1000, 600.0)
    est = InaccurateEstimates(badly_fraction=1.0, cap_seconds=None).estimates(
        runs, rng()
    )
    assert np.all(est > 2.0 * runs)


def test_inaccurate_respects_cap():
    runs = np.full(1000, 3600.0)
    model = InaccurateEstimates(badly_fraction=1.0, max_factor=50.0, cap_seconds=7200.0)
    est = model.estimates(runs, rng())
    assert np.all(est <= 7200.0)
    assert np.all(est >= runs)  # cap never pushes below actual


def test_inaccurate_cap_never_below_actual():
    runs = np.full(10, 10000.0)  # actual exceeds the cap
    model = InaccurateEstimates(cap_seconds=7200.0)
    est = model.estimates(runs, rng())
    assert np.all(est >= runs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"badly_fraction": -0.1},
        {"badly_fraction": 1.5},
        {"max_factor": 1.5},
        {"cap_seconds": 0.0},
    ],
)
def test_inaccurate_validates_params(kwargs):
    with pytest.raises(ValueError):
        InaccurateEstimates(**kwargs)


def test_max_factor_bounds_overestimation():
    runs = np.full(5000, 600.0)
    model = InaccurateEstimates(badly_fraction=1.0, max_factor=10.0, cap_seconds=None)
    est = model.estimates(runs, rng())
    assert np.all(est <= runs * 10.0 + 1e-6)


def test_names_are_informative():
    assert "0.4" in InaccurateEstimates().name() or "bad" in InaccurateEstimates().name()
    assert AccurateEstimates().name() == "AccurateEstimates"

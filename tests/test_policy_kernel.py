"""Registry round-trip: every registered scheme survives
``config() -> scheduler_from_config -> config()`` byte-identically.

The policy kernel assembles each scheme's config mapping from its
policies' ``config_fragment()`` dicts in axis order (queue, reservation,
backfill, preemption), and the grid executor, result cache and worker
dispatch all key on the JSON rendering of that mapping.  A scheme whose
rebuilt config differs -- even only in key order -- would silently miss
its own cache entries and break trace provenance, so the contract here
is *byte* equality of the sorted-less JSON dump, not just dict equality.

Two layers:

* every registered scheme id builds from a bare ``{"scheme": id}``
  config (builder defaults) and round-trips;
* a Hypothesis sweep draws constructor parameters per scheme family and
  round-trips the parameterised configs, with an exhaustiveness guard
  that fails when a new scheme registers without declaring strategies.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedulers.policy import PolicyKernel
from repro.schedulers.registry import known_schemes, scheduler_from_config


def _json(config: dict[str, object]) -> str:
    # insertion order preserved: this is the byte stream cache keys see
    return json.dumps(config)


@pytest.mark.parametrize("scheme", known_schemes())
def test_default_config_round_trips(scheme: str) -> None:
    first = scheduler_from_config({"scheme": scheme})
    config = dict(first.config())
    rebuilt = scheduler_from_config(config)
    assert _json(dict(rebuilt.config())) == _json(config), (
        f"{scheme}: rebuilt config differs from the original"
    )


@pytest.mark.parametrize("scheme", known_schemes())
def test_kernel_schemes_compose_config_from_spec(scheme: str) -> None:
    """PolicyKernel schemes must get their config from the spec -- the
    one place that fixes fragment merge order."""
    scheduler = scheduler_from_config({"scheme": scheme})
    if not isinstance(scheduler, PolicyKernel):
        pytest.skip(f"{scheme} is not kernel-composed (legacy scheduler)")
    assert dict(scheduler.config()) == dict(scheduler.spec.config())
    assert scheduler.scheme_id == scheme


_SWEEP_PARAMS = {
    "suspension_factor": st.floats(
        min_value=1.0, max_value=10.0, allow_nan=False, allow_infinity=False
    ),
    "preemption_interval": st.floats(
        min_value=1.0, max_value=3600.0, allow_nan=False, allow_infinity=False
    ),
    "width_rule": st.booleans(),
}

#: scheme id -> config-key strategies; must cover known_schemes() exactly
SCHEME_PARAMS: dict[str, dict[str, st.SearchStrategy]] = {
    "fcfs": {},
    "easy": {},
    "conservative": {},
    "relaxed": {
        "relaxation": st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
        )
    },
    "speculative": {
        "speculation_window": st.floats(
            min_value=1.0, max_value=7200.0, allow_nan=False, allow_infinity=False
        ),
        "max_kills": st.integers(min_value=0, max_value=10),
    },
    "gang": {
        "quantum": st.floats(
            min_value=1.0, max_value=7200.0, allow_nan=False, allow_infinity=False
        )
    },
    "is": {
        "timeslice": st.floats(
            min_value=1.0, max_value=7200.0, allow_nan=False, allow_infinity=False
        ),
        "sweep_interval": st.floats(
            min_value=1.0, max_value=3600.0, allow_nan=False, allow_infinity=False
        ),
    },
    "ss": dict(_SWEEP_PARAMS),
    "tss": dict(_SWEEP_PARAMS),
    "ss-easy": dict(_SWEEP_PARAMS),
    "tss-conservative": dict(_SWEEP_PARAMS),
}


def test_strategy_table_covers_every_registered_scheme() -> None:
    assert set(SCHEME_PARAMS) == set(known_schemes()), (
        "a scheme registered without round-trip strategies (or one was "
        "removed without pruning SCHEME_PARAMS)"
    )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_parameterised_config_round_trips(data: st.DataObject) -> None:
    scheme = data.draw(st.sampled_from(sorted(SCHEME_PARAMS)), label="scheme")
    config: dict[str, object] = {"scheme": scheme}
    for key, strategy in SCHEME_PARAMS[scheme].items():
        config[key] = data.draw(strategy, label=key)
    first = scheduler_from_config(config)
    emitted = dict(first.config())
    for key, value in config.items():
        assert emitted[key] == value, f"{scheme}: constructor dropped {key}"
    rebuilt = scheduler_from_config(emitted)
    assert _json(dict(rebuilt.config())) == _json(emitted)

"""Golden decision traces: the optimised kernel is byte-pinned to the
pre-optimisation one.

PR 4 rebuilt the simulation kernel for speed -- bitmask cluster,
sweep-scoped caching, O(n) anchor walk -- under the contract that **no
schedule changes**.  These hashes are SHA-256 digests of complete JSONL
decision traces (every dispatch, suspension, resume, verdict and
reservation) produced by the *seed* kernel before any of that work
landed.  The optimised kernel must reproduce them byte for byte.

If an intentional semantic change ever lands (a new tie-break, a
different verdict rule), regenerate the hashes in the same commit and
say so in its message; a perf-only PR that trips this test has a bug.

The grid deliberately spans both machines the paper models at
meaningfully different scales (CTC at 430 processors, SDSC at 128) and
every scheduler family it compares (SS, TSS, EASY, conservative), so a
regression anywhere in cluster/profile/sweep code has a cell that
notices.

The policy-kernel refactor decomposed those schedulers into
queue/reservation/backfill/preemption policies composed by one
``PolicyKernel`` -- under the same byte-identical contract, which these
hashes enforce.  The hybrid schemes it unlocked (``ss-easy``,
``tss-conservative``) have no seed-kernel ancestor; their traces are
pinned in :data:`HYBRID_TRACE_SHA256` at the commit that introduced
them, freezing the composed semantics the same way.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.cluster.machine import Cluster
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler
from repro.obs.recorder import JsonlRecorder
from repro.schedulers.base import Scheduler
from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.sim.driver import SchedulingSimulation
from repro.workload.synthetic import generate_trace

#: (trace preset, n_procs, n_jobs, seed)
_WORKLOADS = {
    "CTC": ("CTC", 430, 60, 11),
    "SDSC": ("SDSC", 128, 80, 7),
}

#: SHA-256 of the seed kernel's JSONL decision trace per grid cell,
#: captured at commit cb1017f (pre-bitmask, pre-sweep-cache kernel)
GOLDEN_TRACE_SHA256 = {
    ("CTC", "ss"): "d5d3fe1f2da73f8ade3907237661d96db640c992dbea740594d3024b4b03e866",
    ("CTC", "tss"): "e665d49128febcf9837cac2d163570c7b8bc8d40fa6cd2e47b4a608522297378",
    ("CTC", "easy"): "da41a9f20641c3f1eb45856ef6259a60c15c24d45b66c440e9ed71e5784140ee",
    ("CTC", "conservative"): (
        "87955d46406819187b0bd2686a1da65b2c93d5f3da1c6eb9f8ba85d1a4e4534b"
    ),
    ("SDSC", "ss"): "f7ce1d7bbaa7372769034a2a067f4c3372c12656ebfd9e51c8b261fa5efcc47b",
    ("SDSC", "tss"): "7cbf16e9b31f1a6c5f07f943f6c4b1bec5619d3de9fc3700b70ec863b9c201c4",
    ("SDSC", "easy"): "1c12bf4b03326daaf63874b278ec8cca77dd09758735fe0408d911cd770f5a2e",
    ("SDSC", "conservative"): (
        "a3c7aae1d88ff45b0c4df0ad2a53beee6c6cbfe0fec5ccacf610e690a680e63c"
    ),
}

#: SHA-256 of the hybrid schemes' JSONL decision traces, pinned at the
#: commit introducing the policy kernel (no seed-kernel ancestor exists)
HYBRID_TRACE_SHA256 = {
    ("CTC", "ss-easy"): (
        "244258e52371642c49fb3a07ebfa17920aee0d17392d16773685e472bd17c5ab"
    ),
    ("CTC", "tss-conservative"): (
        "cd7b13e0676d31a3f297cd1760abb82dcbfa474b919e801b282d1da46fdaa976"
    ),
    ("SDSC", "ss-easy"): (
        "06f075785379f4c80c4ee66fe2512bd7a2c6ffea733ddc6303dfe61303393de3"
    ),
    ("SDSC", "tss-conservative"): (
        "ed1b261913f4e65db1d192f7c92c3a561e4524afa2dd22facde871dee484a468"
    ),
}


def _make_scheduler(name: str) -> Scheduler:
    if name == "ss":
        return SelectiveSuspensionScheduler(suspension_factor=2.0)
    if name == "tss":
        return TunableSelectiveSuspensionScheduler(suspension_factor=2.0)
    if name == "easy":
        return EasyBackfillScheduler()
    if name == "ss-easy":
        from repro.schedulers.hybrids import SuspensionWithHeadGuarantee

        return SuspensionWithHeadGuarantee(suspension_factor=2.0)
    if name == "tss-conservative":
        from repro.schedulers.hybrids import TunableSuspensionWithGuarantees

        return TunableSuspensionWithGuarantees(suspension_factor=2.0)
    return ConservativeBackfillScheduler()


@pytest.mark.parametrize(
    ("workload", "scheme"),
    sorted(GOLDEN_TRACE_SHA256) + sorted(HYBRID_TRACE_SHA256),
    ids=lambda v: str(v),
)
def test_trace_matches_seed_kernel(workload: str, scheme: str, tmp_path: Path) -> None:
    trace_name, n_procs, n_jobs, seed = _WORKLOADS[workload]
    path = tmp_path / f"{workload}-{scheme}.jsonl"
    rec = JsonlRecorder(str(path))
    sim = SchedulingSimulation(Cluster(n_procs), _make_scheduler(scheme), recorder=rec)
    sim.run(generate_trace(trace_name, n_jobs=n_jobs, seed=seed))
    rec.close()
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    expected = {**GOLDEN_TRACE_SHA256, **HYBRID_TRACE_SHA256}
    assert digest == expected[(workload, scheme)], (
        f"{workload}/{scheme}: decision trace diverged from the seed "
        "kernel -- a perf change altered the schedule (or an intentional "
        "semantic change forgot to regenerate the golden hashes)"
    )

"""Cross-module integration: every scheduler over real-shaped traces.

These are the "does the whole system behave like the paper's system"
tests; the per-figure *numbers* live in the benchmark harness, but the
qualitative shape claims (PAPER_CLAIMS in repro.experiments.reference)
are asserted here so a regression that flips a conclusion fails CI.
"""

from __future__ import annotations

import pytest

from repro.core.immediate_service import ImmediateServiceScheduler
from repro.core.overhead import DiskSwapOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler, limits_from_result
from repro.metrics.aggregate import overall_stats, per_category_stats
from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.archive import CTC, SDSC
from repro.workload.estimates import InaccurateEstimates
from repro.workload.job import JobState, fresh_copies
from repro.workload.load import scale_load
from repro.workload.synthetic import generate_trace
from tests.conftest import run_sim

ALL_SCHEDULERS = [
    FCFSScheduler,
    EasyBackfillScheduler,
    ConservativeBackfillScheduler,
    lambda: SelectiveSuspensionScheduler(suspension_factor=2.0),
    lambda: TunableSelectiveSuspensionScheduler(suspension_factor=2.0),
    ImmediateServiceScheduler,
]


@pytest.fixture(scope="module")
def sdsc_jobs():
    return generate_trace("SDSC", n_jobs=350, seed=23)


@pytest.fixture(scope="module")
def sdsc_runs(sdsc_jobs):
    """One run of every scheduler over the same trace."""
    out = {}
    for factory in ALL_SCHEDULERS:
        sched = factory()
        result = run_sim(fresh_copies(sdsc_jobs), sched, n_procs=SDSC.n_procs)
        out[result.scheduler] = result
    return out


def test_every_scheduler_drains(sdsc_runs, sdsc_jobs):
    for name, result in sdsc_runs.items():
        assert len(result.jobs) == len(sdsc_jobs), name
        assert all(j.state is JobState.FINISHED for j in result.jobs), name


def test_work_conservation_across_schedulers(sdsc_runs):
    """Same trace => identical total useful processor-seconds."""
    areas = {
        name: sum(j.procs * j.run_time for j in r.jobs)
        for name, r in sdsc_runs.items()
    }
    values = {round(a, 6) for a in areas.values()}
    assert len(values) == 1


def test_nonpreemptive_schedulers_never_suspend(sdsc_runs):
    for name in ("FCFS", "EASY", "CONS"):
        assert sdsc_runs[name].total_suspensions == 0


def test_preemptive_schedulers_do_suspend(sdsc_runs):
    assert sdsc_runs["SS(SF=2)"].total_suspensions > 0
    assert sdsc_runs["IS"].total_suspensions > 0


def test_backfilling_beats_fcfs(sdsc_runs):
    fcfs = overall_stats(sdsc_runs["FCFS"].jobs).slowdown.mean
    easy = overall_stats(sdsc_runs["EASY"].jobs).slowdown.mean
    assert easy < fcfs


def test_ss_beats_ns_overall(sdsc_runs):
    ns = overall_stats(sdsc_runs["EASY"].jobs).slowdown.mean
    ss = overall_stats(sdsc_runs["SS(SF=2)"].jobs).slowdown.mean
    assert ss < ns


def test_is_thrashes_hardest(sdsc_runs):
    """Claim VI-2 precursor: IS suspends at least an order of magnitude
    more than SS on the same trace."""
    assert (
        sdsc_runs["IS"].total_suspensions
        > 5 * sdsc_runs["SS(SF=2)"].total_suspensions
    )


def test_makespans_comparable(sdsc_runs):
    """No scheduler should blow the schedule up by large factors."""
    spans = {name: r.makespan for name, r in sdsc_runs.items()}
    best = min(spans.values())
    for name, span in spans.items():
        assert span <= 2.5 * best, (name, spans)


# ----------------------------------------------------------------------
# paper claims (reference.PAPER_CLAIMS) at integration scale
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ctc_runs():
    jobs = generate_trace("CTC", n_jobs=900, seed=5)
    ns = run_sim(fresh_copies(jobs), EasyBackfillScheduler(), n_procs=CTC.n_procs)
    ss = run_sim(
        fresh_copies(jobs),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=CTC.n_procs,
    )
    is_run = run_sim(
        fresh_copies(jobs), ImmediateServiceScheduler(), n_procs=CTC.n_procs
    )
    return {"NS": ns, "SS": ss, "IS": is_run}


def _mean_sd(result, cat):
    stats = per_category_stats(result.jobs)
    return stats[cat].slowdown.mean if cat in stats else None


def test_claim_ss_helps_short_categories(ctc_runs):
    """IV-D-1: significant benefit for VS/S wide categories."""
    helped = 0
    for cat in (("VS", "W"), ("VS", "VW"), ("S", "W"), ("S", "VW")):
        ns, ss = _mean_sd(ctc_runs["NS"], cat), _mean_sd(ctc_runs["SS"], cat)
        if ns is not None and ss is not None and ns > 1.5:
            assert ss < ns, cat
            helped += 1
    assert helped >= 2


def test_claim_ss_costs_very_long_little(ctc_runs):
    """IV-D-2: VL degradation exists but is slight (bounded factor)."""
    for cat in (("VL", "Seq"), ("VL", "N"), ("VL", "W"), ("VL", "VW")):
        ns, ss = _mean_sd(ctc_runs["NS"], cat), _mean_sd(ctc_runs["SS"], cat)
        if ns is not None and ss is not None:
            assert ss <= ns * 3.0 + 1.0, cat


def test_claim_is_wins_only_very_short(ctc_runs):
    """IV-D-4: IS beats SS on VS, loses on longer categories overall."""
    ss_long = [
        _mean_sd(ctc_runs["SS"], c)
        for c in (("L", "W"), ("L", "N"), ("VL", "N"), ("VL", "W"))
    ]
    is_long = [
        _mean_sd(ctc_runs["IS"], c)
        for c in (("L", "W"), ("L", "N"), ("VL", "N"), ("VL", "W"))
    ]
    pairs = [(s, i) for s, i in zip(ss_long, is_long, strict=True) if s is not None and i is not None]
    assert pairs
    assert sum(1 for s, i in pairs if i > s) >= len(pairs) / 2


def test_claim_overhead_is_minor():
    """V-A-1: adding the disk-swap overhead model changes SS's overall
    slowdown by far less than the SS-vs-NS gap."""
    jobs = generate_trace("SDSC", n_jobs=350, seed=31)
    free = run_sim(
        fresh_copies(jobs),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    priced = run_sim(
        fresh_copies(jobs),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
        overhead_model=DiskSwapOverheadModel(),
    )
    ns = run_sim(fresh_copies(jobs), EasyBackfillScheduler(), n_procs=SDSC.n_procs)
    sd_free = overall_stats(free.jobs).slowdown.mean
    sd_priced = overall_stats(priced.jobs).slowdown.mean
    sd_ns = overall_stats(ns.jobs).slowdown.mean
    assert sd_priced < sd_ns  # still clearly better than NS
    assert abs(sd_priced - sd_free) < (sd_ns - sd_free) / 2


def test_claim_ss_advantage_grows_with_load():
    """VI-1: the NS-to-SS gap at load 1.3 exceeds the gap at load 1.0."""
    jobs = generate_trace("SDSC", n_jobs=400, seed=13)
    gaps = {}
    for load in (1.0, 1.3):
        scaled = scale_load(jobs, load)
        ns = run_sim(
            fresh_copies(scaled), EasyBackfillScheduler(), n_procs=SDSC.n_procs
        )
        ss = run_sim(
            fresh_copies(scaled),
            SelectiveSuspensionScheduler(suspension_factor=2.0),
            n_procs=SDSC.n_procs,
        )
        gaps[load] = (
            overall_stats(ns.jobs).slowdown.mean
            - overall_stats(ss.jobs).slowdown.mean
        )
    assert gaps[1.3] > gaps[1.0]


def test_claim_is_utilization_lower_under_load():
    """VI-2: IS steady-state utilisation trails SS under load (the
    paper's Fig 35/38 claim; measured over the arrival window because a
    finite trace's drain tail otherwise dominates -- see
    SimulationResult.steady_utilization)."""
    jobs = scale_load(generate_trace("CTC", n_jobs=700, seed=13), 1.6)
    ss = run_sim(
        fresh_copies(jobs),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=CTC.n_procs,
    )
    is_run = run_sim(
        fresh_copies(jobs), ImmediateServiceScheduler(), n_procs=CTC.n_procs
    )
    assert is_run.steady_utilization < ss.steady_utilization


def test_claim_badly_estimated_short_jobs_penalised():
    """V-1: with inaccurate estimates, badly estimated jobs in the VS
    categories do worse under SS than well estimated ones."""
    jobs = generate_trace(
        "SDSC", n_jobs=600, seed=17, estimate_model=InaccurateEstimates()
    )
    ss = run_sim(
        fresh_copies(jobs),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    well = per_category_stats(ss.jobs, quality="well")
    badly = per_category_stats(ss.jobs, quality="badly")
    worse = 0
    compared = 0
    for cat in (("VS", "Seq"), ("VS", "N"), ("VS", "W"), ("VS", "VW")):
        if cat in well and cat in badly and well[cat].count >= 3 and badly[cat].count >= 3:
            compared += 1
            if badly[cat].slowdown.mean >= well[cat].slowdown.mean:
                worse += 1
    assert compared >= 1
    assert worse >= compared / 2


def test_tss_calibration_pipeline():
    """NS -> limits -> TSS round trip at integration scale."""
    jobs = generate_trace("CTC", n_jobs=400, seed=29)
    ns = run_sim(fresh_copies(jobs), EasyBackfillScheduler(), n_procs=CTC.n_procs)
    limits = limits_from_result(ns)
    assert limits.table  # every populated category got a limit
    tss = run_sim(
        fresh_copies(jobs),
        TunableSelectiveSuspensionScheduler(suspension_factor=2.0, limits=limits),
        n_procs=CTC.n_procs,
    )
    assert len(tss.jobs) == len(jobs)

"""The per-figure experiment functions (small sizes for speed)."""

from __future__ import annotations

import pytest

from repro.experiments import paper

N = 220
SEED = 3


def test_job_distribution_outputs():
    out = paper.job_distribution("CTC", n_jobs=N, seed=SEED)
    assert out.exp_id == "tables-2-3-7-8"
    assert abs(sum(out.data["shares16"].values()) - 1.0) < 1e-9
    assert abs(sum(out.data["shares4"].values()) - 1.0) < 1e-9
    assert "Tables II/III" in out.report


def test_ns_baseline_slowdowns_outputs():
    out = paper.ns_baseline_slowdowns("SDSC", n_jobs=N, seed=SEED)
    assert out.data["overall"] >= 1.0
    assert all(v >= 1.0 for v in out.data["grid"].values())
    assert "Table V" in out.report
    assert "No Suspension" in out.results


def test_two_task_figures_outputs():
    out = paper.two_task_figures((1.5, 2.0))
    assert out.data["SF=2"]["frozen"].suspensions == 0
    assert out.data["SF=1.5"]["frozen"].suspensions == 1
    assert "SF=1.5" in out.report


def test_ss_average_metrics_outputs():
    out = paper.ss_average_metrics("SDSC", n_jobs=N, seed=SEED)
    for metric in ("slowdown", "turnaround"):
        grids = out.data[metric]
        assert set(grids) == {"SF = 1.5", "SF = 2", "SF = 5", "No Suspension", "IS"}
        for grid in grids.values():
            assert grid  # nonempty
    assert "Fig 9" in out.report and "Fig 10" in out.report


def test_ss_worst_case_outputs():
    out = paper.ss_worst_case("SDSC", n_jobs=N, seed=SEED)
    assert set(out.data["slowdown"]) == {"SF = 2", "No Suspension", "IS"}
    # worst >= mean structurally; just check worst >= 1
    for grid in out.data["slowdown"].values():
        assert all(v >= 1.0 for v in grid.values())


def test_tss_worst_case_outputs():
    out = paper.tss_worst_case("SDSC", n_jobs=N, seed=SEED)
    assert "SF = 2 Tuned" in out.data["slowdown"]
    assert "SF = 2" in out.data["slowdown"]


def test_estimate_impact_outputs():
    out = paper.estimate_impact("SDSC", n_jobs=N, seed=SEED)
    assert set(out.data) == {"all", "well", "badly"}
    all_counts = out.data["all"]["slowdown"]["No Suspension"]
    assert all_counts
    # every job is either well or badly estimated: the union of group
    # categories covers the all-jobs categories
    union = set(out.data["well"]["slowdown"]["No Suspension"]) | set(
        out.data["badly"]["slowdown"]["No Suspension"]
    )
    assert set(all_counts) <= union


def test_overhead_impact_outputs():
    out = paper.overhead_impact("SDSC", n_jobs=N, seed=SEED)
    assert set(out.data["slowdown"]) == {"SF = 2", "SF = 2 OH", "No Suspension", "IS"}
    # the overhead run must actually charge overhead to suspended jobs
    oh_run = out.results["SF = 2 OH"]
    if oh_run.total_suspensions:
        assert any(j.total_overhead > 0 for j in oh_run.jobs)
    free_run = out.results["SF = 2"]
    assert all(j.total_overhead == 0 for j in free_run.jobs)


def test_load_variation_outputs():
    out = paper.load_variation("SDSC", loads=(1.0, 1.2), n_jobs=N, seed=SEED)
    assert out.data["loads"] == [1.0, 1.2]
    for label in ("SF = 2 Tuned", "No Suspension", "IS"):
        assert len(out.data["utilization"][label]) == 2
        for series in out.data["slowdown"][label].values():
            assert len(series) == 2
    assert "utilisation" in out.report


def test_unknown_trace_raises():
    with pytest.raises(KeyError):
        paper.ns_baseline_slowdowns("NOPE", n_jobs=N, seed=SEED)

"""The zero-copy workload plane (:mod:`repro.experiments.shm`).

Contract under test:

* the struct-of-arrays codec round-trips every static ``Job`` field
  exactly (floats are IEEE doubles -- no quantisation), and rejects
  truncated or foreign blobs instead of decoding garbage;
* publishing is memoised by workload fingerprint (N cells over one
  trace -> one segment) and deterministically unlinked on close;
* a grid over ``jobs_ref`` cells -- including pipeline-derived refs --
  is byte-identical to the same grid over inline cells and to the
  serial path, with warm-cache resume intact across the two shapes;
* the run_grid cache probe's identity memo pins the lists it keys by
  ``id()``, so a collected list can never alias a stale fingerprint.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    GridCell,
    ResultCache,
    compare_schemes_parallel,
    run_grid,
    tuned_schemes,
)
from repro.experiments.cache import fingerprint_jobs
from repro.experiments.shm import (
    JobsRef,
    SegmentIntegrityError,
    WorkloadPlane,
    decode_jobs,
    encode_jobs,
    resolve_jobs,
)
from repro.schedulers.easy import EasyBackfillScheduler
from repro.workload.job import Job
from repro.workload.pipeline import (
    LoadScaleStage,
    WorkloadPipeline,
    pipeline_from_config,
)
from repro.workload.synthetic import generate_trace

N_PROCS = 128


# ----------------------------------------------------------------------
# codec round-trip
# ----------------------------------------------------------------------
def _static_fields(j: Job):
    return (
        j.job_id,
        j.submit_time,
        j.run_time,
        j.estimate,
        j.procs,
        j.memory_mb,
        j.user,
    )


# Valid jobs only (Job.__post_init__ enforces run_time/estimate > 0 and
# submit_time >= 0); floats stress the exact-round-trip claim with
# subnormal-ish, huge and awkward values rather than friendly ones.
positive_floats = st.floats(
    min_value=1e-300, max_value=1e300, allow_nan=False, allow_infinity=False
)
job_strategy = st.builds(
    Job,
    job_id=st.integers(min_value=0, max_value=2**63 - 1),
    submit_time=st.floats(
        min_value=0.0, max_value=1e300, allow_nan=False, allow_infinity=False
    ),
    run_time=positive_floats,
    estimate=positive_floats,
    procs=st.integers(min_value=1, max_value=2**31),
    memory_mb=st.floats(
        min_value=0.0, max_value=1e300, allow_nan=False, allow_infinity=False
    ),
    user=st.integers(min_value=-1, max_value=2**63 - 1),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(job_strategy, max_size=40))
def test_codec_round_trips_every_field(jobs):
    fp, decoded = decode_jobs(encode_jobs(jobs))
    assert fp == fingerprint_jobs(jobs)
    assert [_static_fields(j) for j in decoded] == [_static_fields(j) for j in jobs]


def test_codec_edge_values_round_trip_exactly():
    jobs = [
        Job(job_id=0, submit_time=0.0, run_time=5e-324 or 1e-300, estimate=1e-12,
            procs=1, memory_mb=0.0, user=-1),
        Job(job_id=2**63 - 1, submit_time=1.7976931348623157e308 / 2,
            run_time=0.1 + 0.2, estimate=1e16 + 1.0, procs=2**31,
            memory_mb=3.141592653589793, user=2**62),
    ]
    _, decoded = decode_jobs(encode_jobs(jobs))
    # exact equality, not approx: doubles survive the array round trip
    assert [_static_fields(j) for j in decoded] == [_static_fields(j) for j in jobs]


def test_codec_rejects_truncated_and_foreign_blobs():
    blob = encode_jobs([Job(job_id=1, submit_time=0.0, run_time=1.0,
                            estimate=1.0, procs=1)])
    with pytest.raises(SegmentIntegrityError, match="truncated"):
        decode_jobs(blob[:4])
    with pytest.raises(SegmentIntegrityError, match="magic"):
        decode_jobs(b"NOTAJOBS" + blob[8:])
    with pytest.raises(SegmentIntegrityError, match="truncated inside column"):
        decode_jobs(blob[:-8])


# ----------------------------------------------------------------------
# refs, publishing, memoisation, unlink
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace():
    return generate_trace("SDSC", n_jobs=80, seed=3)


def test_publish_is_memoised_and_ref_is_tiny(trace):
    with WorkloadPlane() as plane:
        ref1 = plane.publish(trace)
        ref2 = plane.publish(trace)  # identity memo
        ref3 = plane.publish(list(trace))  # same content, new list
        assert ref1 == ref2 == ref3
        assert plane.segments == 1
        assert ref1.n_jobs == len(trace)
        # the whole point: the dispatch payload is constant-size, a few
        # hundred bytes no matter how long the trace is
        assert len(pickle.dumps(ref1)) < 512


def test_close_unlinks_and_resolve_needs_fallback(trace):
    plane = WorkloadPlane()
    ref = plane.publish(trace)
    assert ref is not None
    resolved = resolve_jobs(ref)
    assert [j.job_id for j in resolved] == [j.job_id for j in trace]
    plane.close()
    plane.close()  # idempotent
    # segment gone from /dev/shm, memo evicted, no fallback registered
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ref.segment)
    with pytest.raises((FileNotFoundError, OSError)):
        resolve_jobs(ref)


def test_ref_promised_fingerprint_is_verified(trace):
    with WorkloadPlane() as plane:
        ref = plane.publish(trace)
        assert ref is not None
        lying = JobsRef(jobs_fp="0" * 64, segment=ref.segment, n_jobs=ref.n_jobs)
        with pytest.raises(SegmentIntegrityError, match="promised"):
            resolve_jobs(lying)


def test_pipeline_ref_resolves_to_derived_workload(trace):
    pipeline = WorkloadPipeline([LoadScaleStage(1.4)])
    with WorkloadPlane() as plane:
        base_ref = plane.publish(trace)
        derived_ref = plane.publish(trace, pipeline=pipeline)
        assert plane.segments == 1  # derived refs share the base segment
        assert derived_ref.segment == base_ref.segment
        assert derived_ref.cache_jobs_fp() != base_ref.cache_jobs_fp()
        derived = resolve_jobs(derived_ref)
        expected = pipeline.materialise(trace)
        assert [j.submit_time for j in derived] == [j.submit_time for j in expected]


def test_pipeline_config_round_trips_fingerprint(trace):
    pipeline = WorkloadPipeline([LoadScaleStage(1.6)])
    rebuilt = pipeline_from_config(pipeline.config())
    assert rebuilt.fingerprint() == pipeline.fingerprint()
    assert [j.submit_time for j in rebuilt.materialise(trace)] == [
        j.submit_time for j in pipeline.materialise(trace)
    ]


def test_cell_requires_exactly_one_workload(trace):
    cfg = EasyBackfillScheduler().config()
    with pytest.raises(ValueError, match="exactly one"):
        GridCell(key="none", n_procs=N_PROCS, scheduler_config=cfg)
    with WorkloadPlane() as plane:
        ref = plane.publish(trace)
        with pytest.raises(ValueError, match="exactly one"):
            GridCell(
                key="both",
                jobs=trace,
                jobs_ref=ref,
                n_procs=N_PROCS,
                scheduler_config=cfg,
            )


# ----------------------------------------------------------------------
# grid byte-identity: inline vs ref vs serial, warm cache across shapes
# ----------------------------------------------------------------------
def _signature(result):
    return (
        result.makespan,
        result.busy_proc_seconds,
        result.total_suspensions,
        tuple(
            (j.job_id, j.first_start_time, j.finish_time, j.suspension_count)
            for j in result.jobs
        ),
    )


def test_ss_tss_grid_identical_inline_vs_ref_vs_serial(trace):
    schemes = tuned_schemes(suspension_factors=(2.0,))
    serial = compare_schemes_parallel(trace, N_PROCS, schemes)
    inline_pool = compare_schemes_parallel(
        trace, N_PROCS, schemes, workers=2, shm=False
    )
    ref_pool = compare_schemes_parallel(trace, N_PROCS, schemes, workers=2, shm=True)
    assert list(serial) == list(inline_pool) == list(ref_pool)
    for label in serial:
        assert _signature(serial[label]) == _signature(inline_pool[label]), label
        assert _signature(serial[label]) == _signature(ref_pool[label]), label


def test_warm_cache_is_shared_between_inline_and_ref_cells(trace, tmp_path):
    """Converting a grid to refs must not split the cache namespace: a
    pipeline-less ref hashes to the inline workload hash, so a cache
    written by an inline (or serial) run resumes a ref run for free."""
    cfg = EasyBackfillScheduler().config()
    cells = [
        GridCell(key=f"c{i}", jobs=trace, n_procs=N_PROCS, scheduler_config=cfg)
        for i in range(3)
    ]
    cache = ResultCache(tmp_path / "cache")
    cold = run_grid(cells, cache=cache, shm=False)
    assert cold.executed == 3 and cold.cache_hits == 0

    warm = run_grid(cells, workers=2, cache=cache, shm=True)
    assert warm.executed == 0 and warm.cache_hits == 3
    for key in cold.results:
        assert _signature(warm.results[key]) == _signature(cold.results[key])


def test_grid_counters_report_plane_activity(trace):
    cfg = EasyBackfillScheduler().config()
    cells = [
        GridCell(key=f"c{i}", jobs=trace, n_procs=N_PROCS, scheduler_config=cfg)
        for i in range(3)
    ]
    # forced-on + serial keeps everything in-coordinator, where the
    # decode tallies are observable: one segment, one attach+decode,
    # the other two cells served from the per-process memo
    outcome = run_grid(cells, shm=True)
    assert outcome.counters.shm_segments == 1
    assert outcome.counters.shm_attaches == 1
    assert outcome.counters.shm_decodes == 1
    assert outcome.counters.shm_fallbacks == 0


def test_probe_memo_pins_jobs_lists(trace, tmp_path):
    """Satellite regression: the cache probe's identity memo must hold
    a reference to each list it fingerprints.  Transient per-cell lists
    (built in the ``cells`` expression and only reachable through the
    cells) must all land in the cache under their own fingerprints --
    an unpinned ``id()`` key could alias a recycled id to a stale
    fingerprint and serve the wrong workload's result."""
    cfg = EasyBackfillScheduler().config()
    cache = ResultCache(tmp_path / "cache")
    variants = [trace[: 40 + i] for i in range(4)]  # distinct workloads
    cells = [
        GridCell(key=f"v{i}", jobs=list(v), n_procs=N_PROCS, scheduler_config=cfg)
        for i, v in enumerate(variants)
    ]
    run_grid(cells, cache=cache)
    for i, v in enumerate(variants):
        probe = GridCell(
            key=f"probe{i}", jobs=list(v), n_procs=N_PROCS, scheduler_config=cfg
        )
        hit = run_grid([probe], cache=cache)
        assert hit.cache_hits == 1, f"variant {i} missed its own cache entry"
        assert len({j.job_id for j in hit.results[f"probe{i}"].jobs}) == len(v)

"""ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.tables import (
    category_grid_table,
    comparison_table,
    render_table,
    series_table,
)


def test_render_table_basic():
    out = render_table(["name", "value"], [["a", 1.5], ["b", 2.25]])
    lines = out.splitlines()
    assert "name" in lines[0] and "value" in lines[0]
    assert set(lines[1]) == {"-"}
    assert "1.50" in out and "2.25" in out


def test_render_table_handles_none():
    out = render_table(["k", "v"], [["x", None]])
    assert "-" in out.splitlines()[-1]


def test_render_table_large_numbers_use_commas():
    out = render_table(["k", "v"], [["x", 123456.0]])
    assert "123,456" in out


def test_category_grid_full_16():
    values = {
        (lc, wc): 1.0
        for lc in ("VS", "S", "L", "VL")
        for wc in ("Seq", "N", "W", "VW")
    }
    out = category_grid_table(values, title="grid")
    assert out.startswith("grid")
    assert out.count("1.00") == 16
    # rows appear in table order
    body = out.splitlines()
    assert body[3].startswith("VS")
    assert body[-1].startswith("VL")


def test_category_grid_missing_cells_render_dash():
    out = category_grid_table({("VS", "Seq"): 2.0})
    assert "2.00" in out
    assert "-" in out


def test_category_grid_four_way():
    values = {c: 25.0 for c in (("S", "N"), ("S", "W"), ("L", "N"), ("L", "W"))}
    out = category_grid_table(values, four_way=True, precision=0)
    assert out.count("25") == 4
    assert "VS" not in out


def test_comparison_table_orders_categories():
    per_scheme = {
        "A": {("VS", "Seq"): 1.0, ("VL", "VW"): 2.0},
        "B": {("VS", "Seq"): 3.0},
    }
    out = comparison_table(per_scheme)
    lines = out.splitlines()
    assert "A" in lines[0] and "B" in lines[0]
    assert lines[2].startswith("VS Seq")
    assert lines[3].startswith("VL VW")


def test_comparison_table_explicit_categories():
    per_scheme = {"A": {("S", "N"): 1.0}}
    out = comparison_table(per_scheme, categories=[("S", "N")])
    assert "S N" in out


def test_series_table():
    out = series_table("load", [1.0, 1.2], {"NS": [10.0, 20.0], "SS": [5.0, 6.0]})
    lines = out.splitlines()
    assert lines[0].split()[0] == "load"
    assert "10.00" in out and "6.00" in out


def test_series_table_length_mismatch():
    with pytest.raises(ValueError, match="points"):
        series_table("x", [1.0, 2.0], {"bad": [1.0]})

"""Gang scheduling: matrix admission, rotation, coordinated switches."""

from __future__ import annotations

import pytest

from repro.schedulers.gang import GangScheduler
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def test_quantum_validated():
    with pytest.raises(ValueError):
        GangScheduler(quantum=0.0)


def test_single_job_runs_without_switching():
    job = make_job(submit=0.0, run=1000.0, procs=4)
    result = run_sim([job], GangScheduler(quantum=100.0), n_procs=4)
    assert job.finish_time == pytest.approx(1000.0)
    assert result.total_suspensions == 0


def test_two_whole_machine_jobs_time_share():
    a = make_job(job_id=0, submit=0.0, run=300.0, procs=4)
    b = make_job(job_id=1, submit=0.0, run=300.0, procs=4)
    result = run_sim([a, b], GangScheduler(quantum=100.0), n_procs=4)
    # b starts within roughly one quantum (it gets its own slot)
    assert b.first_start_time <= 200.0
    assert result.total_suspensions >= 2  # alternation happened
    # both complete; combined makespan is the serial sum (work conserved)
    assert result.makespan == pytest.approx(600.0, rel=0.01)


def test_same_slot_jobs_run_together():
    a = make_job(job_id=0, submit=0.0, run=200.0, procs=2)
    b = make_job(job_id=1, submit=0.0, run=200.0, procs=2)
    result = run_sim([a, b], GangScheduler(quantum=100.0), n_procs=4)
    # both fit one slot: truly parallel, no suspensions
    assert a.first_start_time == 0.0
    assert b.first_start_time == 0.0
    assert result.total_suspensions == 0


def test_columns_are_stable_across_switches():
    """Local restart falls out of fixed columns: a job suspended by a
    gang switch resumes on the same processors."""
    a = make_job(job_id=0, submit=0.0, run=500.0, procs=3)
    b = make_job(job_id=1, submit=0.0, run=500.0, procs=3)
    run_sim([a, b], GangScheduler(quantum=100.0), n_procs=4)
    assert a.state is JobState.FINISHED and b.state is JobState.FINISHED
    assert a.suspension_count >= 1 or b.suspension_count >= 1
    # mark_started() would have raised on any column change


def test_short_quantum_means_more_switches():
    def switches(quantum):
        jobs = [
            make_job(job_id=0, submit=0.0, run=400.0, procs=4),
            make_job(job_id=1, submit=0.0, run=400.0, procs=4),
        ]
        return run_sim(jobs, GangScheduler(quantum=quantum), n_procs=4).total_suspensions

    assert switches(50.0) > switches(200.0)


def test_drains_real_mix(sdsc_trace_small):
    from repro.workload.archive import SDSC

    result = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        GangScheduler(quantum=600.0),
        n_procs=SDSC.n_procs,
    )
    assert len(result.jobs) == len(sdsc_trace_small)


def test_gang_improves_short_jobs_over_fcfs():
    """Time slicing gives newly arrived jobs service within ~a quantum
    even when a long job hogs the machine."""
    hog = make_job(job_id=0, submit=0.0, run=10_000.0, procs=4)
    shorty = make_job(job_id=1, submit=10.0, run=50.0, procs=4)
    run_sim([hog, shorty], GangScheduler(quantum=100.0), n_procs=4)
    assert shorty.first_start_time <= 300.0
    assert shorty.finish_time < 1000.0


def test_gang_pays_overhead_per_switch():
    from repro.core.overhead import FixedOverheadModel

    a = make_job(job_id=0, submit=0.0, run=300.0, procs=4)
    b = make_job(job_id=1, submit=0.0, run=300.0, procs=4)
    result = run_sim(
        [a, b],
        GangScheduler(quantum=100.0),
        n_procs=4,
        overhead_model=FixedOverheadModel(10.0),
    )
    assert result.makespan > 600.0  # switches are no longer free
    assert a.total_overhead + b.total_overhead > 0

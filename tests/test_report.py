"""Report rendering over real simulation results."""

from __future__ import annotations

import pytest

from repro.analysis.report import experiment_report, scheme_comparison_report
from repro.experiments.runner import compare_schemes, simulate, standard_schemes
from repro.schedulers.easy import EasyBackfillScheduler
from repro.workload.synthetic import generate_trace


@pytest.fixture(scope="module")
def small_result():
    jobs = generate_trace("SDSC", n_jobs=150, seed=2)
    return simulate(jobs, EasyBackfillScheduler(), 128)


@pytest.fixture(scope="module")
def small_comparison():
    jobs = generate_trace("SDSC", n_jobs=150, seed=2)
    return compare_schemes(jobs, 128, standard_schemes(suspension_factors=(2.0,)))


def test_experiment_report_sections(small_result):
    out = experiment_report("my title", small_result)
    assert "my title" in out
    assert "scheduler: EASY" in out
    assert "overall mean slowdown" in out
    assert "Seq" in out and "VW" in out


def test_experiment_report_other_metrics(small_result):
    out = experiment_report("t", small_result, metric="turnaround")
    assert "turnaround" in out
    out = experiment_report("t", small_result, metric="wait")
    assert "wait" in out


def test_comparison_report_columns(small_comparison):
    out = scheme_comparison_report("cmp", small_comparison)
    header = out.splitlines()[4]  # banner (3 lines) + subtitle, then header
    for label in small_comparison:
        assert label in header
    assert "overall:" in out


def test_comparison_report_worst_statistic(small_comparison):
    mean = scheme_comparison_report("cmp", small_comparison, statistic="mean")
    worst = scheme_comparison_report("cmp", small_comparison, statistic="worst")
    assert mean != worst
    assert "worst slowdown" in worst


def test_comparison_report_quality_filter(small_comparison):
    out = scheme_comparison_report("cmp", small_comparison, quality="well")
    assert "well estimated jobs" in out

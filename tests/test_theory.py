"""Two-task alternation theory (section IV-A, Figs 4-6)."""

from __future__ import annotations

import pytest

from repro.core.priorities import GOLDEN_RATIO
from repro.core.theory import (
    suspension_count,
    threshold_for_max_suspensions,
    two_task_timeline,
)


def test_sf2_zero_suspensions():
    """The paper's headline: SF = 2 removes all suspensions (Fig 6)."""
    out = two_task_timeline(2.0)
    assert out.suspensions == 0
    assert [s.task for s in out.segments] == [1, 2]
    assert out.finish == (1.0, 2.0)


def test_above_two_same_as_two():
    """Any SF > 2 behaves exactly like SF = 2 for equal jobs."""
    for sf in (2.5, 3.0, 10.0):
        out = two_task_timeline(sf)
        assert out.suspensions == 0
        assert out.finish == (1.0, 2.0)


def test_between_thresholds_one_suspension():
    out = two_task_timeline(1.5)
    assert out.suspensions == 1
    # T1 runs (SF-1)L = 0.5, T2 runs to completion, T1 finishes
    assert [s.task for s in out.segments] == [1, 2, 1]
    assert out.segments[0].end == pytest.approx(0.5)


def test_sf1_alternates_at_granularity():
    """Fig 4: SF = 1 swaps every sweep interval."""
    out = two_task_timeline(1.0, min_interval=0.1, max_suspensions=100)
    tasks = [s.task for s in out.segments]
    assert tasks[:6] == [1, 2, 1, 2, 1, 2]
    assert all(s.duration == pytest.approx(0.1) for s in out.segments[:-1])


def test_suspension_count_monotone_in_sf():
    counts = [suspension_count(sf) for sf in (1.1, 1.3, 1.5, 1.8, 2.0)]
    assert counts == sorted(counts, reverse=True)


def test_frozen_thresholds_match_closed_form():
    assert threshold_for_max_suspensions(0) == pytest.approx(2.0, abs=1e-6)
    assert threshold_for_max_suspensions(1) == pytest.approx(2**0.5, abs=1e-6)
    assert threshold_for_max_suspensions(2) == pytest.approx(2 ** (1 / 3), abs=1e-6)


def test_age_thresholds_include_golden_ratio():
    """The paper's prose derivation: at most one suspension at the
    golden ratio -- reproduced under age-based semantics."""
    assert threshold_for_max_suspensions(0, "age") == pytest.approx(2.0, abs=1e-6)
    assert threshold_for_max_suspensions(1, "age") == pytest.approx(
        GOLDEN_RATIO, abs=1e-6
    )


def test_age_more_suspensions_than_frozen():
    """Age-based priority grows faster, so alternation lasts longer."""
    for sf in (1.3, 1.5):
        assert suspension_count(sf, "age") >= suspension_count(sf, "frozen")


def test_segments_partition_the_schedule():
    for sf in (1.2, 1.5, 2.0):
        out = two_task_timeline(sf)
        # contiguous, non-overlapping, starting at 0
        assert out.segments[0].start == 0.0
        for a, b in zip(out.segments, out.segments[1:], strict=False):
            assert a.end == pytest.approx(b.start)
        # each task gets exactly L = 1 of run time
        for task in (1, 2):
            total = sum(s.duration for s in out.segments if s.task == task)
            assert total == pytest.approx(1.0)


def test_makespan_is_two_l():
    """Work conservation: total makespan is always 2L on one machine."""
    for sf in (1.1, 1.5, 2.0, 5.0):
        out = two_task_timeline(sf, length=3.0)
        assert out.makespan == pytest.approx(6.0)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        two_task_timeline(0.5)
    with pytest.raises(ValueError):
        two_task_timeline(2.0, length=0.0)
    with pytest.raises(ValueError):
        two_task_timeline(2.0, semantics="bogus")
    with pytest.raises(ValueError):
        threshold_for_max_suspensions(-1)


def test_simulated_ss_matches_theory():
    """Cross-check: the full SS scheduler on two whole-machine jobs
    reproduces the theoretical suspension counts (fine sweep interval)."""
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from tests.conftest import make_job, run_sim

    for sf, expected in ((2.0, 0), (1.5, 1)):
        jobs = [
            make_job(job_id=1, submit=0.0, run=1000.0, procs=4),
            make_job(job_id=2, submit=0.0, run=1000.0, procs=4),
        ]
        result = run_sim(
            jobs,
            SelectiveSuspensionScheduler(
                suspension_factor=sf, preemption_interval=1.0
            ),
            n_procs=4,
        )
        assert result.total_suspensions == expected, f"SF={sf}"

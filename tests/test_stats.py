"""Workload characterisation statistics."""

from __future__ import annotations

import pytest

from repro.workload.stats import Distribution, format_stats, workload_stats
from repro.workload.synthetic import generate_trace
from tests.conftest import make_job


def test_distribution_of_values():
    d = Distribution.of([1.0, 2.0, 3.0, 4.0, 100.0])
    assert d.count == 5
    assert d.mean == pytest.approx(22.0)
    assert d.median == 3.0
    assert d.maximum == 100.0
    assert d.minimum == 1.0


def test_distribution_empty():
    d = Distribution.of([])
    assert d.count == 0 and d.mean == 0.0


def test_stats_on_synthetic_trace():
    jobs = generate_trace("SDSC", n_jobs=500, seed=3)
    stats = workload_stats(jobs)
    assert stats.n_jobs == 500
    assert stats.run_time.minimum >= 30.0
    assert 1 <= stats.width.minimum <= stats.width.maximum <= 128
    assert stats.badly_estimated_fraction == 0.0  # accurate estimates
    assert sum(stats.category_counts.values()) == 500


def test_offered_load_matches_preset_target():
    from repro.workload.archive import SDSC

    jobs = generate_trace("SDSC", n_jobs=3000, seed=3)
    stats = workload_stats(jobs)
    assert stats.offered_load(SDSC.n_procs) == pytest.approx(
        SDSC.target_utilization, rel=0.12
    )


def test_poisson_arrival_cv_near_one():
    jobs = generate_trace("CTC", n_jobs=3000, seed=3)
    stats = workload_stats(jobs)
    assert 0.8 < stats.arrival_cv < 1.2


def test_badly_estimated_fraction_counts():
    jobs = [
        make_job(job_id=0, run=100.0, estimate=150.0),
        make_job(job_id=1, submit=10.0, run=100.0, estimate=500.0),
        make_job(job_id=2, submit=20.0, run=100.0, estimate=100.0),
        make_job(job_id=3, submit=30.0, run=100.0, estimate=300.0),
    ]
    stats = workload_stats(jobs)
    assert stats.badly_estimated_fraction == pytest.approx(0.5)


def test_offered_load_validates():
    jobs = [make_job()]
    with pytest.raises(ValueError):
        workload_stats(jobs).offered_load(0)


def test_empty_workload_rejected():
    with pytest.raises(ValueError):
        workload_stats([])


def test_format_stats_report():
    jobs = generate_trace("SDSC", n_jobs=200, seed=3)
    out = format_stats(workload_stats(jobs), n_procs=128)
    assert "jobs: 200" in out
    assert "% of 128" in out
    assert "Table I grid" in out


def test_cli_inspect(capsys):
    from repro.cli import main

    rc = main(["inspect", "--trace", "SDSC", "--jobs", "150"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "jobs: 150" in out
    assert "offered demand" in out

"""ASCII chart renderers."""

from __future__ import annotations

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, line_plot


def test_bar_chart_basic():
    out = bar_chart({"NS": 10.0, "SS": 2.0}, title="slowdown")
    assert out.startswith("slowdown")
    lines = out.splitlines()
    assert lines[1].startswith("NS")
    # NS's bar is longer than SS's
    assert lines[1].count("#") > lines[2].count("#")
    assert "10.00" in lines[1]


def test_bar_chart_log_scale():
    out = bar_chart({"a": 1000.0, "b": 10.0}, log=True, width=30)
    lines = out.splitlines()
    a_bar = lines[0].count("#")
    b_bar = lines[1].count("#")
    # log10: 3 decades vs 1 decade => 3x the bar, not 100x
    assert a_bar == pytest.approx(3 * b_bar, abs=2)
    assert "log10" in out


def test_bar_chart_zero_and_negative_safe():
    out = bar_chart({"zero": 0.0, "one": 1.0})
    assert "zero" in out


def test_bar_chart_empty_rejected():
    with pytest.raises(ValueError):
        bar_chart({})


def test_grouped_bar_chart_structure():
    out = grouped_bar_chart(
        {"VS VW": {"NS": 34.0, "SS": 3.0}, "VL VW": {"NS": 1.1, "SS": 1.5}},
        title="by category",
    )
    assert "VS VW:" in out and "VL VW:" in out
    assert out.count("|") == 4  # one bar per scheme per group


def test_grouped_bar_chart_empty_rejected():
    with pytest.raises(ValueError):
        grouped_bar_chart({})


def test_line_plot_shape():
    out = line_plot(
        [1.0, 1.5, 2.0],
        {"NS": [10.0, 20.0, 40.0], "SS": [5.0, 6.0, 8.0]},
        title="load curve",
        height=8,
        width=30,
    )
    lines = out.splitlines()
    assert lines[0] == "load curve"
    assert "o=NS" in out and "x=SS" in out
    # frame: top and bottom rules plus 8 grid rows
    assert sum(1 for line in lines if "+---" in line or "+--" in line) >= 2
    assert "o" in out and "x" in out


def test_line_plot_validates():
    with pytest.raises(ValueError):
        line_plot([1.0, 2.0], {})
    with pytest.raises(ValueError):
        line_plot([1.0, 2.0], {"a": [1.0]})
    with pytest.raises(ValueError):
        line_plot([1.0], {"a": [1.0]})


def test_line_plot_flat_series():
    out = line_plot([1.0, 2.0], {"flat": [3.0, 3.0]})
    assert "flat" in out

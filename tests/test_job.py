"""Job lifecycle: transitions, clocks, xfactor, overhead fields."""

from __future__ import annotations

import pytest

from repro.workload.job import Job, JobState, fresh_copies
from tests.conftest import make_job


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_construction_defaults():
    j = make_job(job_id=3, submit=10.0, run=100.0, procs=4)
    assert j.state is JobState.PENDING
    assert j.remaining_useful == 100.0
    assert j.estimate == 100.0
    assert j.suspension_count == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"job_id": -1},
        {"run": 0.0},
        {"run": -5.0},
        {"procs": 0},
        {"estimate": 0.0},
        {"submit": -1.0},
    ],
)
def test_invalid_fields_rejected(kwargs):
    with pytest.raises(ValueError):
        make_job(**kwargs)


# ----------------------------------------------------------------------
# lifecycle transitions
# ----------------------------------------------------------------------
def test_normal_lifecycle():
    j = make_job(submit=0.0, run=50.0, procs=2)
    j.mark_submitted(0.0)
    assert j.state is JobState.QUEUED
    j.mark_started(10.0, frozenset({0, 1}))
    assert j.state is JobState.RUNNING
    assert j.first_start_time == 10.0
    j.mark_finished(60.0)
    assert j.state is JobState.FINISHED
    assert j.finish_time == 60.0
    assert j.turnaround() == 60.0


def test_start_requires_queued():
    j = make_job()
    with pytest.raises(ValueError, match="cannot start"):
        j.mark_started(0.0, frozenset({0}))


def test_submit_twice_rejected():
    j = make_job()
    j.mark_submitted(0.0)
    with pytest.raises(ValueError, match="cannot submit"):
        j.mark_submitted(1.0)


def test_finish_requires_running():
    j = make_job()
    j.mark_submitted(0.0)
    with pytest.raises(ValueError, match="cannot finish"):
        j.mark_finished(5.0)


def test_suspend_requires_running():
    j = make_job()
    j.mark_submitted(0.0)
    with pytest.raises(ValueError, match="cannot suspend"):
        j.mark_suspended(5.0)


def test_start_with_wrong_proc_count():
    j = make_job(procs=3)
    j.mark_submitted(0.0)
    with pytest.raises(ValueError, match="3"):
        j.mark_started(1.0, frozenset({0}))


def test_suspend_remembers_processors():
    j = make_job(procs=2)
    j.mark_submitted(0.0)
    j.mark_started(0.0, frozenset({4, 5}))
    j.mark_suspended(10.0)
    assert j.state is JobState.QUEUED
    assert j.suspended_procs == frozenset({4, 5})
    assert j.allocated_procs == frozenset()
    assert j.suspension_count == 1
    assert j.needs_specific_procs


def test_resume_must_use_same_processors():
    j = make_job(procs=2)
    j.mark_submitted(0.0)
    j.mark_started(0.0, frozenset({4, 5}))
    j.mark_suspended(10.0)
    with pytest.raises(ValueError, match="different processor set"):
        j.mark_started(20.0, frozenset({0, 1}))
    j.mark_started(20.0, frozenset({4, 5}))
    assert j.state is JobState.RUNNING


def test_epoch_bumps_on_suspend_and_finish():
    j = make_job(procs=1)
    j.mark_submitted(0.0)
    j.mark_started(0.0, frozenset({0}))
    assert j.epoch == 0
    j.mark_suspended(5.0)
    assert j.epoch == 1
    j.mark_started(6.0, frozenset({0}))
    j.mark_finished(100.0)
    assert j.epoch == 2


def test_first_start_time_not_overwritten_on_resume():
    j = make_job(procs=1)
    j.mark_submitted(0.0)
    j.mark_started(5.0, frozenset({0}))
    j.mark_suspended(10.0)
    j.mark_started(20.0, frozenset({0}))
    assert j.first_start_time == 5.0


# ----------------------------------------------------------------------
# clocks
# ----------------------------------------------------------------------
def test_wait_clock_accrues_only_while_queued():
    j = make_job(submit=0.0, run=100.0)
    j.mark_submitted(0.0)
    assert j.waited(30.0) == 30.0
    j.mark_started(30.0, frozenset({0}))
    assert j.waited(80.0) == 30.0  # frozen while running
    j.mark_suspended(80.0)
    assert j.waited(100.0) == 50.0  # grows again while suspended


def test_run_clock_accrues_only_while_running():
    j = make_job(submit=0.0, run=100.0)
    j.mark_submitted(0.0)
    assert j.accrued(10.0) == 0.0
    j.mark_started(10.0, frozenset({0}))
    assert j.accrued(35.0) == 25.0
    j.mark_suspended(40.0)
    assert j.accrued(90.0) == 30.0


def test_clock_rejects_time_travel():
    j = make_job(submit=10.0)
    with pytest.raises(ValueError, match="backwards"):
        j.mark_submitted(5.0)


def test_waited_before_any_event_is_zero():
    j = make_job(submit=5.0)
    assert j.waited(100.0) == 0.0  # PENDING time does not count as waiting


# ----------------------------------------------------------------------
# xfactor
# ----------------------------------------------------------------------
def test_xfactor_starts_at_one():
    j = make_job(submit=0.0, run=100.0)
    j.mark_submitted(0.0)
    assert j.xfactor(0.0) == 1.0


def test_xfactor_grows_while_waiting():
    j = make_job(submit=0.0, run=100.0, estimate=100.0)
    j.mark_submitted(0.0)
    assert j.xfactor(100.0) == pytest.approx(2.0)
    assert j.xfactor(300.0) == pytest.approx(4.0)


def test_xfactor_fast_for_short_slow_for_long():
    """The bias the paper relies on: same wait, shorter job => higher xf."""
    short = make_job(job_id=1, run=60.0)
    long_ = make_job(job_id=2, run=3600.0)
    for j in (short, long_):
        j.mark_submitted(0.0)
    assert short.xfactor(600.0) > long_.xfactor(600.0)


def test_xfactor_frozen_while_running():
    j = make_job(submit=0.0, run=100.0)
    j.mark_submitted(0.0)
    j.mark_started(50.0, frozenset({0}))
    assert j.xfactor(90.0) == pytest.approx(1.5)


def test_instantaneous_xfactor_infinite_before_running():
    j = make_job(run=100.0)
    j.mark_submitted(0.0)
    assert j.instantaneous_xfactor(10.0) == float("inf")


def test_instantaneous_xfactor_decays_with_service():
    j = make_job(run=1000.0)
    j.mark_submitted(0.0)
    j.mark_started(100.0, frozenset({0}))
    early = j.instantaneous_xfactor(110.0)  # (100+10)/10 = 11
    late = j.instantaneous_xfactor(600.0)  # (100+500)/500 = 1.2
    assert early == pytest.approx(11.0)
    assert late == pytest.approx(1.2)
    assert late < early


# ----------------------------------------------------------------------
# derived helpers
# ----------------------------------------------------------------------
def test_remaining_estimate_uses_estimate_and_overhead():
    j = make_job(run=100.0, estimate=150.0)
    j.mark_submitted(0.0)
    assert j.remaining_estimate() == 150.0
    j.pending_overhead = 30.0
    assert j.remaining_estimate() == 180.0


def test_remaining_estimate_floors_at_one_second():
    j = make_job(run=100.0, estimate=100.0)
    j.remaining_useful = 0.0  # job consumed all useful work
    assert j.remaining_estimate() >= 1.0


def test_useful_done_tracks_remaining():
    j = make_job(run=100.0)
    j.remaining_useful = 40.0
    assert j.useful_done == 60.0


def test_turnaround_requires_finish():
    j = make_job()
    with pytest.raises(ValueError):
        j.turnaround()


def test_copy_static_resets_dynamic_state():
    j = make_job(job_id=5, submit=3.0, run=50.0, procs=2, memory_mb=256.0)
    j.mark_submitted(3.0)
    j.mark_started(10.0, frozenset({0, 1}))
    j.mark_finished(60.0)
    c = j.copy_static()
    assert c.state is JobState.PENDING
    assert c.job_id == 5
    assert c.memory_mb == 256.0
    assert c.remaining_useful == 50.0
    assert c.finish_time is None


def test_fresh_copies_independent():
    jobs = [make_job(job_id=i) for i in range(3)]
    copies = fresh_copies(jobs)
    assert len(copies) == 3
    assert all(a is not b for a, b in zip(jobs, copies, strict=True))


def test_job_identity_semantics():
    a = make_job(job_id=1)
    b = make_job(job_id=1)
    assert a != b  # same fields, distinct entities
    assert len({a, b}) == 2


def test_mark_killed_resets_progress():
    j = make_job(submit=0.0, run=100.0, procs=2)
    j.mark_submitted(0.0)
    j.mark_started(0.0, frozenset({0, 1}))
    j.last_dispatch_time = 0.0  # normally maintained by the driver
    j.remaining_useful = 40.0  # driver would have accounted 60s of work
    j.mark_killed(60.0)
    assert j.state is JobState.QUEUED
    assert j.remaining_useful == 100.0  # from scratch
    assert j.kill_count == 1
    assert j.wasted_time == pytest.approx(60.0)
    assert not j.needs_specific_procs  # kills do not pin processors


def test_mark_killed_requires_running():
    j = make_job()
    j.mark_submitted(0.0)
    with pytest.raises(ValueError, match="cannot kill"):
        j.mark_killed(5.0)


def test_killed_job_can_restart_anywhere():
    j = make_job(submit=0.0, run=100.0, procs=2)
    j.mark_submitted(0.0)
    j.mark_started(0.0, frozenset({0, 1}))
    j.mark_killed(50.0)
    j.mark_started(60.0, frozenset({4, 5}))  # different processors: fine
    assert j.state is JobState.RUNNING

"""Time-windowed workload sharding and the sharded-replay equivalence.

The load-bearing guarantee (relied on by ``repro-sched workload
replay`` and docs/WORKLOADS.md): replaying a long log in shards through
the crash-safe grid executor -- any batch size, any worker count, warm
or cold cache -- produces **byte-identical** results to an eager
in-memory replay of the same shards, witnessed by per-category metrics
and the outcome fingerprint.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    WorkloadShard,
    iter_time_shards,
    outcome_fingerprint,
    replay_sharded,
    shard_cell,
    simulate_cell,
)
from repro.metrics.aggregate import per_category_stats
from repro.schedulers import EasyBackfillScheduler
from repro.workload.job import Job
from repro.workload.synthetic import generate_trace

N_PROCS = 128
WINDOW = 6 * 3600.0


def _job(job_id: int, submit: float) -> Job:
    return Job(job_id=job_id, submit_time=submit, run_time=100.0,
               estimate=200.0, procs=4)


@pytest.fixture(scope="module")
def trace():
    return generate_trace("SDSC", n_jobs=500, seed=42)


@pytest.fixture(scope="module")
def config():
    return EasyBackfillScheduler().config()


# ----------------------------------------------------------------------
# iter_time_shards
# ----------------------------------------------------------------------
def test_shard_boundaries_are_absolute():
    jobs = [_job(1, 100.0), _job(2, 7300.0), _job(3, 7400.0)]
    shards = list(iter_time_shards(jobs, window=3600.0))
    assert [(s.start, s.end) for s in shards] == [(0.0, 3600.0), (7200.0, 10800.0)]
    assert [len(s.jobs) for s in shards] == [1, 2]
    assert [s.index for s in shards] == [0, 1]


def test_shards_preserve_every_job(trace):
    shards = list(iter_time_shards(iter(trace), WINDOW))
    flattened = [j for s in shards for j in s.jobs]
    assert flattened == list(trace)


def test_shard_split_is_independent_of_batching(trace):
    """Boundaries depend only on (jobs, window) -- streaming vs list."""
    a = [(s.start, s.end, len(s.jobs)) for s in iter_time_shards(trace, WINDOW)]
    b = [(s.start, s.end, len(s.jobs)) for s in iter_time_shards(iter(trace), WINDOW)]
    assert a == b


def test_min_jobs_folds_dribble_forward():
    jobs = [_job(1, 100.0), _job(2, 7300.0), _job(3, 7350.0)]
    shards = list(iter_time_shards(jobs, window=3600.0, min_jobs=2))
    assert len(shards) == 1
    assert shards[0].start == 0.0      # stretched back over the dribble
    assert len(shards[0].jobs) == 3


def test_trailing_dribble_still_emitted():
    jobs = [_job(1, 100.0)]
    shards = list(iter_time_shards(jobs, window=3600.0, min_jobs=5))
    assert len(shards) == 1
    assert shards[0].jobs == (jobs[0],)


def test_unsorted_stream_raises():
    jobs = [_job(1, 5000.0), _job(2, 100.0)]
    with pytest.raises(ValueError, match="submit-sorted"):
        list(iter_time_shards(jobs, window=3600.0))


def test_bad_parameters_raise():
    with pytest.raises(ValueError, match="window"):
        list(iter_time_shards([], window=0.0))
    with pytest.raises(ValueError, match="min_jobs"):
        list(iter_time_shards([], window=10.0, min_jobs=0))


def test_shard_key_is_stable():
    shard = WorkloadShard(index=3, start=0.0, end=3600.0, jobs=())
    assert shard.key == "shard00003@[0,3600)"


# ----------------------------------------------------------------------
# provenance-tagged cells
# ----------------------------------------------------------------------
def test_shard_cells_with_different_provenance_never_collide(trace, config):
    shard = next(iter_time_shards(iter(trace), WINDOW))
    a = shard_cell(shard, N_PROCS, config, provenance={"pipeline": "fp-a"})
    b = shard_cell(shard, N_PROCS, config, provenance={"pipeline": "fp-b"})
    assert a.fingerprint() != b.fingerprint()


def test_shard_cell_fingerprint_covers_window(trace, config):
    shard = next(iter_time_shards(iter(trace), WINDOW))
    moved = WorkloadShard(shard.index, shard.start, shard.end + WINDOW, shard.jobs)
    assert (
        shard_cell(shard, N_PROCS, config).fingerprint()
        != shard_cell(moved, N_PROCS, config).fingerprint()
    )


# ----------------------------------------------------------------------
# outcome fingerprint
# ----------------------------------------------------------------------
def test_outcome_fingerprint_detects_any_outcome_change(trace, config):
    shard = next(iter_time_shards(iter(trace), WINDOW))
    result = simulate_cell(shard_cell(shard, N_PROCS, config))
    fp = outcome_fingerprint(result.jobs)
    assert fp == outcome_fingerprint(result.jobs)  # stable
    # order is part of the identity (results merge in shard order)
    assert outcome_fingerprint(list(reversed(result.jobs))) != fp
    # and so is every job: dropping one changes the hash
    assert outcome_fingerprint(result.jobs[:-1]) != fp


# ----------------------------------------------------------------------
# the equivalence: sharded streaming replay == eager replay
# ----------------------------------------------------------------------
def _eager_replay(trace, config):
    """Reference path: materialise, shard, simulate each shard serially."""
    jobs = []
    for shard in iter_time_shards(list(trace), WINDOW):
        jobs.extend(simulate_cell(shard_cell(shard, N_PROCS, config)).jobs)
    return jobs


def test_sharded_replay_matches_eager_byte_for_byte(trace, config, tmp_path):
    eager_jobs = _eager_replay(trace, config)

    outcome = replay_sharded(
        iter(trace),              # streaming input
        N_PROCS,
        config,
        window=WINDOW,
        batch_size=5,             # several executor batches
        workers=2,                # through a real process pool
        cache=ResultCache(tmp_path / "cache"),
        provenance={"pipeline": "equivalence-test"},
    )

    assert outcome.fingerprint() == outcome_fingerprint(eager_jobs)
    # per-category metrics agree exactly, not approximately
    eager_stats = per_category_stats(eager_jobs)
    sharded_stats = per_category_stats(outcome.jobs)
    assert set(eager_stats) == set(sharded_stats)
    for cat, stats in eager_stats.items():
        assert stats.slowdown.mean == sharded_stats[cat].slowdown.mean
        assert stats.turnaround.mean == sharded_stats[cat].turnaround.mean


def test_sharded_replay_batch_size_invariance(trace, config):
    fps = {
        replay_sharded(
            iter(trace), N_PROCS, config, window=WINDOW, batch_size=bs
        ).fingerprint()
        for bs in (1, 7, 1000)
    }
    assert len(fps) == 1


def test_sharded_replay_resumes_from_cache(trace, config, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = replay_sharded(
        iter(trace), N_PROCS, config, window=WINDOW, cache=cache,
        provenance={"pipeline": "resume-test"},
    )
    assert cold.executed == cold.shards and cold.cache_hits == 0
    warm = replay_sharded(
        iter(trace), N_PROCS, config, window=WINDOW, cache=cache,
        provenance={"pipeline": "resume-test"},
    )
    assert warm.executed == 0 and warm.cache_hits == warm.shards
    assert warm.fingerprint() == cold.fingerprint()


def test_sharded_replay_cache_respects_provenance(trace, config, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    a = replay_sharded(
        iter(trace), N_PROCS, config, window=WINDOW, cache=cache,
        provenance={"pipeline": "fp-a"},
    )
    b = replay_sharded(
        iter(trace), N_PROCS, config, window=WINDOW, cache=cache,
        provenance={"pipeline": "fp-b"},
    )
    assert b.cache_hits == 0 and b.executed == b.shards  # no cross-talk
    assert a.fingerprint() == b.fingerprint()  # ... but identical outcomes

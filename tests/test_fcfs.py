"""FCFS: strict arrival order, head-of-line blocking."""

from __future__ import annotations

import pytest

from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def test_strict_arrival_order():
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=8),
        make_job(job_id=1, submit=1.0, run=10.0, procs=8),
        make_job(job_id=2, submit=2.0, run=10.0, procs=8),
    ]
    run_sim(jobs, FCFSScheduler(), n_procs=8)
    assert jobs[0].first_start_time == 0.0
    assert jobs[1].first_start_time == 100.0
    assert jobs[2].first_start_time == 110.0


def test_head_of_line_blocking_leaves_processors_idle():
    """The fragmentation pathology of section II: a wide head blocks
    narrow jobs even though processors are free."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=10.0, procs=8),  # blocked head
        make_job(job_id=2, submit=2.0, run=10.0, procs=1),  # would fit now
    ]
    run_sim(jobs, FCFSScheduler(), n_procs=8)
    assert jobs[1].first_start_time == 100.0
    assert jobs[2].first_start_time == pytest.approx(110.0)  # waits behind head


def test_parallel_starts_when_they_fit():
    jobs = [
        make_job(job_id=0, submit=0.0, run=50.0, procs=3),
        make_job(job_id=1, submit=0.0, run=50.0, procs=3),
        make_job(job_id=2, submit=0.0, run=50.0, procs=2),
    ]
    run_sim(jobs, FCFSScheduler(), n_procs=8)
    assert all(j.first_start_time == 0.0 for j in jobs)


def test_all_jobs_finish():
    jobs = [make_job(job_id=i, submit=float(i), run=20.0, procs=(i % 4) + 1) for i in range(20)]
    result = run_sim(jobs, FCFSScheduler(), n_procs=6)
    assert all(j.state is JobState.FINISHED for j in jobs)
    assert result.total_suspensions == 0


def test_never_reorders_even_same_size():
    jobs = [
        make_job(job_id=0, submit=0.0, run=30.0, procs=4),
        make_job(job_id=1, submit=1.0, run=5.0, procs=4),
        make_job(job_id=2, submit=2.0, run=5.0, procs=4),
    ]
    run_sim(jobs, FCFSScheduler(), n_procs=4)
    starts = [j.first_start_time for j in jobs]
    assert starts == sorted(starts)
    assert starts == [0.0, 30.0, 35.0]

"""Immediate Service comparator: timeslices and instantaneous xfactor."""

from __future__ import annotations

import pytest

from repro.core.immediate_service import ImmediateServiceScheduler
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def is_sched(timeslice=600.0, sweep=60.0):
    return ImmediateServiceScheduler(timeslice=timeslice, sweep_interval=sweep)


def test_arrival_gets_immediate_service_by_preemption():
    """An arriving job preempts instantly, without waiting for a sweep."""
    runner = make_job(job_id=0, submit=0.0, run=10_000.0, procs=4)
    arrival = make_job(job_id=1, submit=700.0, run=60.0, procs=4)
    run_sim([runner, arrival], is_sched(), n_procs=4)
    # runner past its 600 s protection window at t=700 => suspended at once
    assert arrival.first_start_time == pytest.approx(700.0)
    assert runner.suspension_count >= 1


def test_protection_window_blocks_preemption():
    runner = make_job(job_id=0, submit=0.0, run=10_000.0, procs=4)
    arrival = make_job(job_id=1, submit=100.0, run=60.0, procs=4)
    run_sim([runner, arrival], is_sched(), n_procs=4)
    # runner still protected at t=100; the arrival waits for the window
    assert arrival.first_start_time >= 600.0


def test_victims_chosen_by_lowest_instantaneous_xfactor():
    """The job with the most service relative to its wait goes first."""
    served = make_job(job_id=0, submit=0.0, run=50_000.0, procs=2)
    starved = make_job(job_id=1, submit=20_000.0, run=50_000.0, procs=2)
    arrival = make_job(job_id=2, submit=41_000.0, run=60.0, procs=2)
    run_sim([served, starved, arrival], is_sched(), n_procs=4)
    # at t=41_000: served ixf = 41000/41000-ish ~ 1.0;
    # starved started at 20000, ixf = 21000/21000 ~ 1.0 too... both ran
    # since their submit; served accrued more => lower ixf; it is chosen.
    assert served.suspension_count >= 1
    assert arrival.first_start_time == pytest.approx(41_000.0)


def test_free_processors_used_before_preemption():
    runner = make_job(job_id=0, submit=0.0, run=5_000.0, procs=2)
    arrival = make_job(job_id=1, submit=700.0, run=60.0, procs=2)
    run_sim([runner, arrival], is_sched(), n_procs=4)
    assert runner.suspension_count == 0  # 2 procs were free
    assert arrival.first_start_time == pytest.approx(700.0)


def test_timeslice_parameter_validated():
    with pytest.raises(ValueError):
        ImmediateServiceScheduler(timeslice=0.0)


def test_suspended_job_resumes_and_finishes():
    runner = make_job(job_id=0, submit=0.0, run=2_000.0, procs=4)
    arrival = make_job(job_id=1, submit=700.0, run=60.0, procs=4)
    run_sim([runner, arrival], is_sched(), n_procs=4)
    assert runner.state is JobState.FINISHED
    assert runner.finish_time >= 2_000.0


def test_very_short_jobs_do_well_on_mix(sdsc_trace_small):
    """The paper: IS is excellent for the VS categories."""
    from repro.metrics.aggregate import per_category_stats
    from repro.schedulers.easy import EasyBackfillScheduler
    from repro.workload.archive import SDSC

    ns = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        EasyBackfillScheduler(),
        n_procs=SDSC.n_procs,
    )
    is_run = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        is_sched(),
        n_procs=SDSC.n_procs,
    )
    ns_stats = per_category_stats(ns.jobs)
    is_stats = per_category_stats(is_run.jobs)
    for cat in (("VS", "N"), ("VS", "W")):
        if cat in ns_stats and cat in is_stats and ns_stats[cat].count >= 5:
            assert is_stats[cat].slowdown.mean <= ns_stats[cat].slowdown.mean


def test_long_jobs_suffer_on_mix(sdsc_trace_small):
    """The paper: IS severely degrades long jobs vs SS."""
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.metrics.aggregate import per_category_stats
    from repro.workload.archive import SDSC

    ss = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    is_run = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        is_sched(),
        n_procs=SDSC.n_procs,
    )
    ss_long = per_category_stats(ss.jobs)
    is_long = per_category_stats(is_run.jobs)
    degraded = 0
    compared = 0
    for cat in (("L", "Seq"), ("L", "N"), ("L", "W"), ("VL", "N"), ("VL", "W")):
        if cat in ss_long and cat in is_long and ss_long[cat].count >= 3:
            compared += 1
            if is_long[cat].slowdown.mean > ss_long[cat].slowdown.mean:
                degraded += 1
    assert compared >= 2
    assert degraded >= compared / 2


def test_is_suspends_far_more_than_ss(sdsc_trace_small):
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.workload.archive import SDSC

    ss = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    is_run = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        is_sched(),
        n_procs=SDSC.n_procs,
    )
    assert is_run.total_suspensions > ss.total_suspensions


def test_drains_everything(ctc_trace_small):
    from repro.workload.archive import CTC

    result = run_sim(
        [j.copy_static() for j in ctc_trace_small],
        is_sched(),
        n_procs=CTC.n_procs,
    )
    assert len(result.jobs) == len(ctc_trace_small)

"""Lazy workload pipeline: stage semantics, determinism, fingerprints."""

from __future__ import annotations

import pytest

from repro.workload.estimates import (
    AccurateEstimates,
    InaccurateEstimates,
    PerfectWithNoise,
)
from repro.workload.load import scale_load
from repro.workload.pipeline import (
    CategoryFilterStage,
    EstimateStage,
    LoadScaleStage,
    WorkloadPipeline,
    open_workload,
)
from repro.workload.swf import write_synthetic_swf
from repro.workload.synthetic import generate_trace


@pytest.fixture(scope="module")
def base_jobs():
    return generate_trace("SDSC", n_jobs=300, seed=11)


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def test_load_scale_matches_eager(base_jobs):
    streamed = list(LoadScaleStage(1.3).apply(iter(base_jobs)))
    eager = scale_load(base_jobs, 1.3)
    assert [j.submit_time for j in streamed] == [j.submit_time for j in eager]
    assert [j.run_time for j in streamed] == [j.run_time for j in eager]


def test_load_scale_rejects_nonpositive():
    with pytest.raises(ValueError, match="positive"):
        LoadScaleStage(0.0)


def test_load_scale_does_not_mutate_input(base_jobs):
    before = [j.submit_time for j in base_jobs]
    list(LoadScaleStage(2.0).apply(iter(base_jobs)))
    assert [j.submit_time for j in base_jobs] == before


def test_estimate_stage_batching_invariance(base_jobs):
    """Job i's estimate must not depend on how the stream is batched."""
    stage = EstimateStage(InaccurateEstimates(), seed=7, chunk_size=64)

    whole = [j.estimate for j in stage.apply(iter(base_jobs))]

    def two_halves():
        yield from base_jobs[:100]
        yield from base_jobs[100:]

    split = [j.estimate for j in stage.apply(two_halves())]
    assert whole == split


def test_estimate_stage_chunk_size_changes_draws(base_jobs):
    a = [
        j.estimate
        for j in EstimateStage(InaccurateEstimates(), seed=7, chunk_size=64).apply(
            iter(base_jobs)
        )
    ]
    b = [
        j.estimate
        for j in EstimateStage(InaccurateEstimates(), seed=7, chunk_size=65).apply(
            iter(base_jobs)
        )
    ]
    assert a != b  # chunk_size is part of the contract, hence the config


def test_estimate_stage_rejects_bad_chunk():
    with pytest.raises(ValueError, match="chunk_size"):
        EstimateStage(AccurateEstimates(), seed=1, chunk_size=0)


def test_estimate_stage_estimates_clamped_positive(base_jobs):
    out = EstimateStage(PerfectWithNoise(noise=0.9), seed=3).apply(iter(base_jobs))
    assert all(j.estimate >= 1.0 for j in out)


def test_category_filter_keeps_only_requested(base_jobs):
    from repro.workload.categories import classify_sixteen_way

    keep = {("VS", "VW"), ("L", "W")}
    out = list(CategoryFilterStage(keep).apply(iter(base_jobs)))
    assert out  # the SDSC shape populates these cells
    assert all(classify_sixteen_way(j) in keep for j in out)
    # filtering passes the original objects through (no copy needed)
    assert all(any(o is b for b in base_jobs) for o in out[:5])


def test_category_filter_rejects_empty_keep():
    with pytest.raises(ValueError, match="empty"):
        CategoryFilterStage([])


# ----------------------------------------------------------------------
# pipeline composition
# ----------------------------------------------------------------------
def test_pipeline_streaming_equals_materialise(base_jobs):
    pipe = WorkloadPipeline(
        [LoadScaleStage(1.2), EstimateStage(InaccurateEstimates(), seed=5)]
    )
    streamed = list(pipe.jobs(iter(base_jobs)))
    eager = pipe.materialise(iter(base_jobs))
    assert [(j.job_id, j.submit_time, j.estimate) for j in streamed] == [
        (j.job_id, j.submit_time, j.estimate) for j in eager
    ]


def test_identity_pipeline_passes_through(base_jobs):
    assert list(WorkloadPipeline().jobs(iter(base_jobs))) == list(base_jobs)
    assert WorkloadPipeline().describe() == "identity pipeline (no stages)"


def test_fingerprint_distinguishes_configs():
    fps = {
        WorkloadPipeline().fingerprint(),
        WorkloadPipeline([LoadScaleStage(1.2)]).fingerprint(),
        WorkloadPipeline([LoadScaleStage(1.3)]).fingerprint(),
        WorkloadPipeline([EstimateStage(InaccurateEstimates(), seed=5)]).fingerprint(),
        WorkloadPipeline(
            [EstimateStage(InaccurateEstimates(), seed=6)]
        ).fingerprint(),
        WorkloadPipeline(
            [EstimateStage(InaccurateEstimates(), seed=5, chunk_size=128)]
        ).fingerprint(),
        WorkloadPipeline(
            [EstimateStage(PerfectWithNoise(noise=0.3), seed=5)]
        ).fingerprint(),
    }
    assert len(fps) == 7


def test_fingerprint_is_stable():
    pipe = WorkloadPipeline([LoadScaleStage(1.3)])
    again = WorkloadPipeline([LoadScaleStage(1.3)])
    assert pipe.fingerprint() == again.fingerprint()


def test_config_is_json_stable():
    import json

    pipe = WorkloadPipeline(
        [
            LoadScaleStage(1.3),
            EstimateStage(InaccurateEstimates(), seed=5),
            CategoryFilterStage({("VS", "VW")}),
        ]
    )
    payload = json.dumps(pipe.config(), sort_keys=True)
    assert json.loads(payload) == pipe.config()


# ----------------------------------------------------------------------
# open_workload
# ----------------------------------------------------------------------
def test_open_workload_streams_with_header_procs(tmp_path):
    path = tmp_path / "log.swf"
    write_synthetic_swf(path, n_jobs=150, n_procs=128)
    jobs = list(open_workload(path))
    assert len(jobs) == 150
    assert max(j.procs for j in jobs) <= 128
    assert jobs[0].submit_time == 0.0  # rebased


def test_open_workload_applies_pipeline(tmp_path):
    path = tmp_path / "log.swf"
    write_synthetic_swf(path, n_jobs=100)
    plain = list(open_workload(path))
    scaled = list(open_workload(path, WorkloadPipeline([LoadScaleStage(2.0)])))
    assert [j.submit_time for j in scaled] == [j.submit_time / 2.0 for j in plain]


def test_open_workload_rejects_bad_policy(tmp_path):
    path = tmp_path / "log.swf"
    write_synthetic_swf(path, n_jobs=5)
    with pytest.raises(ValueError, match="on_malformed"):
        open_workload(path, on_malformed="explode")

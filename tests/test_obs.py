"""Decision tracing: counters, replay witness, round-trips, identity.

The contracts under test (docs/TRACING.md):

* **zero-overhead-when-off** -- no recorder (or a disabled one) means
  ``driver.tracer is None`` and ``result.counters is None``;
* **schedule identity** -- tracing changes no decisions: a traced run
  is event-for-event identical to the untraced run of the same inputs;
* **three-way consistency** -- for SS, TSS, IS and NS alike, the
  driver's totals, the counters maintained during emission, and an
  independent replay of the event stream all agree (per-job suspension
  counts, busy-area integral, utilization);
* **round-trip** -- a trace written to JSONL reads back to the same
  replayed summary as the in-memory stream;
* **self-check** -- the ``run_end`` trailer verifies the replay, and
  structurally broken streams raise instead of replaying.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.immediate_service import ImmediateServiceScheduler
from repro.core.overhead import DiskSwapOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler
from repro.experiments.runner import simulate
from repro.obs import (
    DENIAL_CAUSES,
    EVENT_TYPES,
    NULL_RECORDER,
    InMemoryRecorder,
    JsonlRecorder,
    TraceCounters,
    read_trace,
    summarize_trace,
)
from repro.obs.events import DECISION_ACTIONS
from repro.schedulers.easy import EasyBackfillScheduler
from repro.sim.audit import audit_result
from repro.workload.synthetic import generate_trace

N_PROCS = 128

SCHEDULER_FACTORIES = {
    "ss": lambda: SelectiveSuspensionScheduler(suspension_factor=1.5),
    "tss": lambda: TunableSelectiveSuspensionScheduler(suspension_factor=1.5),
    "is": ImmediateServiceScheduler,
    "ns": EasyBackfillScheduler,
}


@pytest.fixture(scope="module")
def trace_jobs():
    """Congested enough that SS/TSS/IS all actually suspend someone."""
    return generate_trace("SDSC", n_jobs=260, seed=9)


def traced_run(trace_jobs, scheme: str):
    recorder = InMemoryRecorder()
    result = simulate(trace_jobs, SCHEDULER_FACTORIES[scheme](), N_PROCS, recorder=recorder)
    return result, recorder


def close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


# ----------------------------------------------------------------------
# zero-overhead-when-off
# ----------------------------------------------------------------------
def test_untraced_run_has_no_counters(trace_jobs):
    result = simulate(trace_jobs, EasyBackfillScheduler(), N_PROCS)
    assert result.counters is None


def test_disabled_recorder_keeps_tracing_off(trace_jobs):
    assert not NULL_RECORDER.enabled
    result = simulate(trace_jobs, EasyBackfillScheduler(), N_PROCS, recorder=NULL_RECORDER)
    assert result.counters is None


# ----------------------------------------------------------------------
# schedule identity: tracing observes, never perturbs
# ----------------------------------------------------------------------
def schedule_signature(result):
    return (
        result.makespan,
        result.busy_proc_seconds,
        result.total_suspensions,
        result.events_dispatched,
        tuple(
            (j.job_id, j.first_start_time, j.finish_time, j.suspension_count)
            for j in result.jobs
        ),
    )


@pytest.mark.parametrize("scheme", sorted(SCHEDULER_FACTORIES))
def test_traced_run_identical_to_untraced(trace_jobs, scheme):
    plain = simulate(trace_jobs, SCHEDULER_FACTORIES[scheme](), N_PROCS)
    traced, _ = traced_run(trace_jobs, scheme)
    assert schedule_signature(plain) == schedule_signature(traced)


# ----------------------------------------------------------------------
# three-way consistency: driver totals == counters == replayed trace
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", sorted(SCHEDULER_FACTORIES))
def test_counters_and_replay_agree_with_driver(trace_jobs, scheme):
    result, recorder = traced_run(trace_jobs, scheme)
    audit_result(result)  # first witness: per-job record audit

    counters = result.counters
    assert isinstance(counters, TraceCounters)
    assert counters.arrivals == len(trace_jobs)
    assert counters.finishes == len(trace_jobs)
    assert counters.suspensions == result.total_suspensions
    assert counters.preempt_attempts == counters.preempt_grants + sum(
        counters.preempt_denials.values()
    )

    # second witness: independent replay of the event stream
    summary = summarize_trace(recorder.dicts())
    assert summary.matches_run_end is True
    assert summary.finished == len(trace_jobs)
    assert summary.suspensions == result.total_suspensions
    assert close(summary.makespan, result.makespan)
    assert close(summary.busy_proc_seconds, result.busy_proc_seconds)
    assert close(summary.utilization, result.utilization)

    # per-job reconstruction: suspension counts and busy areas
    by_id = {j.job_id: j for j in result.jobs}
    assert set(summary.per_job) == set(by_id)
    for jid, stats in summary.per_job.items():
        job = by_id[jid]
        assert stats.suspensions == job.suspension_count
        assert stats.finish is not None and close(stats.finish, job.finish_time)
        area = job.procs * (job.run_time + job.total_overhead)
        assert close(stats.busy, area)
    assert close(
        sum(s.busy for s in summary.per_job.values()), result.busy_proc_seconds
    )


def test_preemptive_schemes_actually_suspended(trace_jobs):
    """The fixture must exercise the interesting paths, or the

    consistency assertions above would pass vacuously."""
    for scheme in ("ss", "tss", "is"):
        result, _ = traced_run(trace_jobs, scheme)
        assert result.total_suspensions > 0, scheme


def test_counters_refold_from_stream(trace_jobs):
    """Counters must equal a from-scratch fold over the emitted events."""
    result, recorder = traced_run(trace_jobs, "ss")
    c = result.counters
    events = recorder.dicts()
    by_type = {t: sum(1 for e in events if e["type"] == t) for t in EVENT_TYPES}
    assert c.arrivals == by_type["arrival"]
    assert c.starts == by_type["start"] + by_type["backfill_start"]
    assert c.backfill_fills == by_type["backfill_start"]
    assert c.resumes == by_type["resume"]
    assert c.suspensions == by_type["suspend"]
    assert c.kills == by_type["kill"]
    assert c.finishes == by_type["finish"]
    denied = [e for e in events if e["type"] == "decision" and e["action"] == "preempt_denied"]
    assert sum(c.preempt_denials.values()) == len(denied)


# ----------------------------------------------------------------------
# decision records
# ----------------------------------------------------------------------
def test_ss_decision_records_explain_preemptions(trace_jobs):
    result, recorder = traced_run(trace_jobs, "ss")
    decisions = [e for e in recorder.dicts() if e["type"] == "decision"]
    assert decisions, "congested SS run must emit decisions"
    grants = [d for d in decisions if d["action"] == "preempt"]
    assert grants, "fixture must include at least one granted preemption"
    suspended_via_decisions = sum(len(d["suspended"]) for d in grants)
    assert suspended_via_decisions == result.total_suspensions
    for d in decisions:
        assert d["action"] in DECISION_ACTIONS
        assert d["sf"] == 1.5
        for v in d.get("victims", []):
            assert v["verdict"] == "candidate" or v["verdict"] in DENIAL_CAUSES
        if d["action"] == "preempt_denied":
            assert d["cause"] in DENIAL_CAUSES
        if d["action"] == "preempt":
            # every granted preemption documents a passing eq. 2 test
            # against each chosen victim
            chosen = set(d["suspended"])
            for v in d["victims"]:
                if v["job"] in chosen:
                    assert v["verdict"] == "candidate"
                    assert d["xfactor"] >= d["sf"] * v["xfactor"]


def test_tss_category_limit_verdicts_carry_limit(trace_jobs):
    _, recorder = traced_run(trace_jobs, "tss")
    verdicts = [
        v
        for e in recorder.dicts()
        if e["type"] == "decision"
        for v in e.get("victims", [])
        if v["verdict"] == "category_limit"
    ]
    for v in verdicts:
        assert v["limit"] > 0


def test_is_decisions_carry_path_and_timeslice(trace_jobs):
    _, recorder = traced_run(trace_jobs, "is")
    decisions = [e for e in recorder.dicts() if e["type"] == "decision"]
    assert decisions
    assert {d["path"] for d in decisions} <= {"arrival", "sweep", "reentry"}
    assert all(d["timeslice"] == 600.0 for d in decisions)
    causes = {d["cause"] for d in decisions if d["action"] == "preempt_denied"}
    assert causes <= {"protected", "priority", "insufficient"}


def test_ns_run_emits_reservations_but_no_preemptions(trace_jobs):
    result, recorder = traced_run(trace_jobs, "ns")
    assert result.counters.preempt_attempts == 0
    actions = {e["action"] for e in recorder.dicts() if e["type"] == "decision"}
    assert actions <= {"reservation"}
    assert result.counters.backfill_fills > 0


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def test_jsonl_round_trip_matches_memory(trace_jobs, tmp_path):
    path = tmp_path / "ss.jsonl"
    with JsonlRecorder(path) as rec:
        simulate(trace_jobs, SCHEDULER_FACTORIES["ss"](), N_PROCS, recorder=rec)
    _, memory = traced_run(trace_jobs, "ss")
    from_disk = list(read_trace(path))
    assert from_disk == memory.dicts()
    disk_summary = summarize_trace(from_disk)
    mem_summary = summarize_trace(memory.dicts())
    assert disk_summary == mem_summary
    assert disk_summary.matches_run_end is True


def test_jsonl_lines_are_compact_json(trace_jobs, tmp_path):
    path = tmp_path / "ss.jsonl"
    with JsonlRecorder(path) as rec:
        simulate(trace_jobs[:40], SCHEDULER_FACTORIES["ss"](), N_PROCS, recorder=rec)
    lines = path.read_text().splitlines()
    assert lines and json.loads(lines[0])["type"] == "run_begin"
    assert all(": " not in line.split('"', 1)[0] for line in lines)  # compact separators


def test_overheaded_trace_accounts_for_overhead(trace_jobs, tmp_path):
    """With the disk-swap model on, suspend events carry the charge and

    the replayed busy integral still matches the driver's."""
    recorder = InMemoryRecorder()
    result = simulate(
        trace_jobs,
        SCHEDULER_FACTORIES["ss"](),
        N_PROCS,
        overhead_model=DiskSwapOverheadModel(),
        recorder=recorder,
    )
    assert result.total_suspensions > 0
    suspends = [e for e in recorder.dicts() if e["type"] == "suspend"]
    assert all(e["overhead_added"] > 0 for e in suspends)
    summary = summarize_trace(recorder.dicts())
    assert summary.matches_run_end is True
    assert close(summary.busy_proc_seconds, result.busy_proc_seconds)


# ----------------------------------------------------------------------
# replay self-checks
# ----------------------------------------------------------------------
def test_tampered_run_end_is_detected(trace_jobs):
    _, recorder = traced_run(trace_jobs, "ss")
    events = recorder.dicts()
    events[-1]["busy_proc_seconds"] += 1.0
    assert summarize_trace(events).matches_run_end is False


def test_trace_without_trailer_has_no_verdict(trace_jobs):
    _, recorder = traced_run(trace_jobs, "ns")
    events = [e for e in recorder.dicts() if e["type"] != "run_end"]
    assert summarize_trace(events).matches_run_end is None


def test_replay_rejects_ghost_release():
    events = [{"t": 1.0, "type": "finish", "job": 7}]
    with pytest.raises(ValueError, match="not running"):
        summarize_trace(events)


def test_replay_rejects_double_dispatch():
    events = [
        {"t": 0.0, "type": "start", "job": 1, "width": 2},
        {"t": 1.0, "type": "start", "job": 1, "width": 2},
    ]
    with pytest.raises(ValueError, match="dispatched twice"):
        summarize_trace(events)


def test_replay_rejects_truncated_stream():
    events = [{"t": 0.0, "type": "start", "job": 1, "width": 2}]
    with pytest.raises(ValueError, match="still on processors"):
        summarize_trace(events)


def test_replay_rejects_newer_schema():
    events = [{"t": 0.0, "type": "run_begin", "job": None, "schema": 99}]
    with pytest.raises(ValueError, match="newer"):
        summarize_trace(events)


def test_read_trace_reports_malformed_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t":0.0,"type":"run_begin","job":null}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        list(read_trace(path))


# ----------------------------------------------------------------------
# counters plumbing
# ----------------------------------------------------------------------
def test_queue_depth_series(trace_jobs):
    result, _ = traced_run(trace_jobs, "ss")
    series = result.counters.queue_depth
    assert series, "queue depth series must not be empty"
    times = [t for t, _ in series]
    assert times == sorted(times)
    assert len(set(times)) == len(times), "same-t samples must coalesce"
    assert all(d >= 0 for _, d in series)
    assert result.counters.max_queue_depth == max(d for _, d in series)
    assert series[-1][1] == 0, "a drained run ends with an empty queue"

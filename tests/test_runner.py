"""Experiment runner: simulate() and compare_schemes()."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    SchemeSpec,
    compare_schemes,
    simulate,
    standard_schemes,
    tuned_schemes,
)
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.job import JobState
from tests.conftest import make_job


def small_jobs():
    return [make_job(job_id=i, submit=float(i * 5), run=30.0, procs=2) for i in range(8)]


def test_simulate_copies_jobs_by_default():
    jobs = small_jobs()
    result = simulate(jobs, FCFSScheduler(), n_procs=4)
    assert all(j.state is JobState.PENDING for j in jobs)  # originals untouched
    assert all(j.state is JobState.FINISHED for j in result.jobs)


def test_simulate_in_place_mode():
    jobs = small_jobs()
    simulate(jobs, FCFSScheduler(), n_procs=4, copy_jobs=False)
    assert all(j.state is JobState.FINISHED for j in jobs)


def test_simulate_rejects_too_wide_jobs():
    jobs = [make_job(procs=10)]
    with pytest.raises(ValueError, match="never run"):
        simulate(jobs, FCFSScheduler(), n_procs=4)


def test_standard_schemes_labels():
    labels = [s.label for s in standard_schemes()]
    assert labels == ["SF = 1.5", "SF = 2", "SF = 5", "No Suspension", "IS"]


def test_tuned_schemes_need_baseline():
    specs = tuned_schemes(suspension_factors=(2.0,))
    tuned = [s for s in specs if "Tuned" in s.label]
    assert len(tuned) == 1
    assert tuned[0].needs_baseline
    assert tuned[0].factory_with_baseline is not None


def test_compare_schemes_runs_everything():
    jobs = small_jobs()
    results = compare_schemes(jobs, 4, standard_schemes(suspension_factors=(2.0,)))
    assert set(results) == {"SF = 2", "No Suspension", "IS"}
    for r in results.values():
        assert len(r.jobs) == len(jobs)


def test_compare_schemes_with_baseline_calibration():
    jobs = small_jobs()
    results = compare_schemes(jobs, 4, tuned_schemes(suspension_factors=(2.0,)))
    assert "SF = 2 Tuned" in results
    assert len(results["SF = 2 Tuned"].jobs) == len(jobs)


def test_compare_schemes_isolated_workload_copies():
    """Each scheme must see a pristine trace: results are comparable."""
    jobs = small_jobs()
    results = compare_schemes(
        jobs,
        4,
        [
            SchemeSpec("a", EasyBackfillScheduler),
            SchemeSpec("b", EasyBackfillScheduler),
        ],
    )
    a = [(j.job_id, j.finish_time) for j in results["a"].jobs]
    b = [(j.job_id, j.finish_time) for j in results["b"].jobs]
    assert a == b  # identical policy, identical trace => identical outcome

"""CLI entry points (small sizes to keep the suite fast)."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["run", "--trace", "SDSC", "--scheduler", "ss"])
    assert args.command == "run"
    assert args.trace == "SDSC"


def test_run_command(capsys):
    rc = main(["run", "--trace", "SDSC", "--jobs", "120", "--scheduler", "easy"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "EASY" in out
    assert "mean slowdown by category" in out


def test_run_with_ss_and_overhead(capsys):
    rc = main(
        [
            "run",
            "--trace",
            "SDSC",
            "--jobs",
            "100",
            "--scheduler",
            "ss",
            "--sf",
            "1.5",
            "--overhead",
        ]
    )
    assert rc == 0
    assert "SS(SF=1.5)" in capsys.readouterr().out


def test_run_with_load_scaling(capsys):
    rc = main(["run", "--trace", "SDSC", "--jobs", "100", "--load", "1.3"])
    assert rc == 0


def test_run_unknown_scheduler():
    with pytest.raises(SystemExit):
        main(["run", "--scheduler", "bogus", "--jobs", "10"])


def test_compare_command(capsys):
    rc = main(["compare", "--trace", "SDSC", "--jobs", "100"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "No Suspension" in out
    assert "IS" in out


def test_experiment_list(capsys):
    rc = main(["experiment", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_experiment_unknown_id(capsys):
    rc = main(["experiment", "nope"])
    assert rc == 2


def test_experiment_no_id_returns_error(capsys):
    rc = main(["experiment"])
    assert rc == 2


def test_experiment_figs_4_6(capsys):
    rc = main(["experiment", "figs-4-6"])
    assert rc == 0
    assert "SF=2" in capsys.readouterr().out


def test_experiment_tables_4_5_small(capsys):
    rc = main(["experiment", "tables-4-5", "--trace", "SDSC", "--jobs", "150"])
    assert rc == 0
    assert "Table V" in capsys.readouterr().out


def test_run_from_swf_file(tmp_path, capsys):
    from repro.workload.swf import jobs_to_swf_records, write_swf
    from repro.workload.synthetic import generate_trace

    jobs = generate_trace("SDSC", n_jobs=80, seed=3)
    path = tmp_path / "t.swf"
    write_swf(path, jobs_to_swf_records(jobs))
    rc = main(
        ["run", "--trace", "SDSC", "--swf", str(path), "--scheduler", "easy"]
    )
    assert rc == 0
    assert "EASY" in capsys.readouterr().out


@pytest.mark.parametrize("name", ["gang", "relaxed", "speculative", "fcfs", "tss"])
def test_run_all_scheduler_names(name, capsys):
    rc = main(["run", "--trace", "SDSC", "--jobs", "80", "--scheduler", name])
    assert rc == 0
    assert "mean slowdown by category" in capsys.readouterr().out


# ----------------------------------------------------------------------
# `trace` subcommands (docs/TRACING.md)
# ----------------------------------------------------------------------
def _record_small_trace(tmp_path, capsys, scheduler="ss"):
    out = tmp_path / f"{scheduler}.jsonl"
    rc = main(
        [
            "trace",
            "record",
            "--trace",
            "SDSC",
            "--jobs",
            "120",
            "--seed",
            "9",
            "--load",
            "1.2",
            "--scheduler",
            scheduler,
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    return out, capsys.readouterr().out


def test_trace_record_then_summarize_round_trip(tmp_path, capsys):
    """`record` prints the replayed summary; `summarize` must print the

    byte-identical block -- output equality IS the round-trip check."""
    out, recorded = _record_small_trace(tmp_path, capsys)
    assert out.exists() and out.stat().st_size > 0
    assert "run_end check      consistent with driver totals" in recorded
    rc = main(["trace", "summarize", str(out)])
    assert rc == 0
    assert capsys.readouterr().out == recorded


def test_trace_filter_by_type_and_job(tmp_path, capsys):
    import json

    out, _ = _record_small_trace(tmp_path, capsys)
    rc = main(["trace", "filter", str(out), "--type", "decision"])
    assert rc == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines
    events = [json.loads(line) for line in lines]
    assert all(e["type"] == "decision" for e in events)
    jid = events[0]["job"]
    rc = main(["trace", "filter", str(out), "--job", str(jid)])
    assert rc == 0
    per_job = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert per_job and all(e["job"] == jid for e in per_job)


def test_trace_gantt_ascii_and_csv(tmp_path, capsys):
    out, _ = _record_small_trace(tmp_path, capsys)
    rc = main(["trace", "gantt", str(out), "--width", "40"])
    assert rc == 0
    chart = capsys.readouterr().out
    assert "legend:" in chart and "columns" in chart
    rc = main(["trace", "gantt", str(out), "--csv"])
    assert rc == 0
    csv_text = capsys.readouterr().out
    assert csv_text.startswith("job,start,end,duration,width,area,end_type,via,resumed")


def test_trace_record_all_scheduler_names(tmp_path, capsys):
    for name in ("easy", "tss", "is", "speculative"):
        out, recorded = _record_small_trace(tmp_path, capsys, scheduler=name)
        assert "trace summary:" in recorded


def test_compare_with_trace_dir(tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    rc = main(
        [
            "compare",
            "--trace",
            "SDSC",
            "--jobs",
            "100",
            "--trace-dir",
            str(trace_dir),
        ]
    )
    assert rc == 0
    assert "No Suspension" in capsys.readouterr().out
    written = sorted(p.name for p in trace_dir.glob("*.jsonl"))
    assert len(written) >= 3  # one per compared scheme
    from repro.obs import read_trace, summarize_trace

    for path in trace_dir.glob("*.jsonl"):
        assert summarize_trace(read_trace(path)).matches_run_end is True


# ----------------------------------------------------------------------
# the workload family (streaming SWF pipeline)
# ----------------------------------------------------------------------
@pytest.fixture()
def swf_log(tmp_path):
    from repro.workload.swf import write_synthetic_swf

    path = tmp_path / "demo.swf"
    write_synthetic_swf(path, n_jobs=200, n_procs=128)
    return str(path)


def test_workload_validate_clean(swf_log, capsys):
    rc = main(["workload", "validate", swf_log])
    assert rc == 0
    out = capsys.readouterr().out
    assert "records" in out
    assert "clean" in out


def test_workload_validate_flags_dirty_log(tmp_path, capsys):
    path = tmp_path / "dirty.swf"
    path.write_text(
        "; MaxProcs: 128\n"
        "1 0 -1 3600 16 -1 -1 16 7200 -1 1 5 2 -1 1 -1 -1 -1\n"
        "not an swf line\n"
    )
    rc = main(["workload", "validate", str(path)])
    assert rc == 1
    assert "malformed" in capsys.readouterr().out


def test_workload_stats(swf_log, capsys):
    rc = main(["workload", "stats", swf_log])
    assert rc == 0
    out = capsys.readouterr().out
    assert "jobs" in out
    assert "offered demand" in out


def test_workload_stats_with_pipeline(swf_log, capsys):
    rc = main(["workload", "stats", swf_log, "--load", "1.3",
               "--estimates", "inaccurate", "--seed", "9"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pipeline: load_scale -> estimates" in out


def test_workload_stats_needs_procs_without_header(tmp_path):
    path = tmp_path / "bare.swf"
    path.write_text("1 0 -1 3600 16 -1 -1 16 7200 -1 1 5 2 -1 1 -1 -1 -1\n")
    with pytest.raises(SystemExit, match="--procs"):
        main(["workload", "stats", str(path)])


def test_workload_replay(swf_log, capsys):
    rc = main(["workload", "replay", swf_log, "--scheduler", "easy",
               "--window", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shards:" in out
    assert "outcome fingerprint:" in out
    assert "mean slowdown per category" in out


def test_workload_replay_fingerprint_reproducible(swf_log, capsys):
    main(["workload", "replay", swf_log, "--window", "6"])
    first = capsys.readouterr().out
    main(["workload", "replay", swf_log, "--window", "6", "--batch-size", "3"])
    second = capsys.readouterr().out

    def fp(out):
        return next(
            line for line in out.splitlines() if line.startswith("outcome fingerprint:")
        )

    assert fp(first) == fp(second)


def test_workload_replay_with_trace_dir(swf_log, tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    rc = main(["workload", "replay", swf_log, "--window", "6",
               "--trace-dir", str(trace_dir)])
    assert rc == 0
    traces = list(trace_dir.glob("shard*.jsonl"))
    assert traces  # one JSONL per shard

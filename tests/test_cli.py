"""CLI entry points (small sizes to keep the suite fast)."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["run", "--trace", "SDSC", "--scheduler", "ss"])
    assert args.command == "run"
    assert args.trace == "SDSC"


def test_run_command(capsys):
    rc = main(["run", "--trace", "SDSC", "--jobs", "120", "--scheduler", "easy"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "EASY" in out
    assert "mean slowdown by category" in out


def test_run_with_ss_and_overhead(capsys):
    rc = main(
        [
            "run",
            "--trace",
            "SDSC",
            "--jobs",
            "100",
            "--scheduler",
            "ss",
            "--sf",
            "1.5",
            "--overhead",
        ]
    )
    assert rc == 0
    assert "SS(SF=1.5)" in capsys.readouterr().out


def test_run_with_load_scaling(capsys):
    rc = main(["run", "--trace", "SDSC", "--jobs", "100", "--load", "1.3"])
    assert rc == 0


def test_run_unknown_scheduler():
    with pytest.raises(SystemExit):
        main(["run", "--scheduler", "bogus", "--jobs", "10"])


def test_compare_command(capsys):
    rc = main(["compare", "--trace", "SDSC", "--jobs", "100"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "No Suspension" in out
    assert "IS" in out


def test_experiment_list(capsys):
    rc = main(["experiment", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_experiment_unknown_id(capsys):
    rc = main(["experiment", "nope"])
    assert rc == 2


def test_experiment_no_id_returns_error(capsys):
    rc = main(["experiment"])
    assert rc == 2


def test_experiment_figs_4_6(capsys):
    rc = main(["experiment", "figs-4-6"])
    assert rc == 0
    assert "SF=2" in capsys.readouterr().out


def test_experiment_tables_4_5_small(capsys):
    rc = main(["experiment", "tables-4-5", "--trace", "SDSC", "--jobs", "150"])
    assert rc == 0
    assert "Table V" in capsys.readouterr().out


def test_run_from_swf_file(tmp_path, capsys):
    from repro.workload.swf import jobs_to_swf_records, write_swf
    from repro.workload.synthetic import generate_trace

    jobs = generate_trace("SDSC", n_jobs=80, seed=3)
    path = tmp_path / "t.swf"
    write_swf(path, jobs_to_swf_records(jobs))
    rc = main(
        ["run", "--trace", "SDSC", "--swf", str(path), "--scheduler", "easy"]
    )
    assert rc == 0
    assert "EASY" in capsys.readouterr().out


@pytest.mark.parametrize("name", ["gang", "relaxed", "speculative", "fcfs", "tss"])
def test_run_all_scheduler_names(name, capsys):
    rc = main(["run", "--trace", "SDSC", "--jobs", "80", "--scheduler", name])
    assert rc == 0
    assert "mean slowdown by category" in capsys.readouterr().out

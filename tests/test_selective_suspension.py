"""Selective Suspension scheduler: the section IV policy."""

from __future__ import annotations

import pytest

from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def ss(sf=2.0, interval=60.0, width_rule=True):
    return SelectiveSuspensionScheduler(
        suspension_factor=sf, preemption_interval=interval, width_rule=width_rule
    )


# ----------------------------------------------------------------------
# basic preemption behaviour
# ----------------------------------------------------------------------
def test_short_job_preempts_long_job():
    """The motivating example of section I."""
    long_job = make_job(job_id=0, submit=0.0, run=10_000.0, procs=4)
    short_job = make_job(job_id=1, submit=10.0, run=60.0, procs=4)
    result = run_sim([long_job, short_job], ss(sf=2.0, interval=10.0), n_procs=4)
    # short job's xfactor reaches 2 after waiting 60s; long job frozen at 1
    assert short_job.first_start_time < 200.0
    assert long_job.suspension_count == 1
    assert short_job.finish_time < long_job.finish_time
    assert result.total_suspensions == 1


def test_no_preemption_below_sf_threshold():
    """With a huge SF, the short job just waits (degenerates to NS)."""
    long_job = make_job(job_id=0, submit=0.0, run=1_000.0, procs=4)
    short_job = make_job(job_id=1, submit=10.0, run=60.0, procs=4)
    run_sim([long_job, short_job], ss(sf=1000.0, interval=10.0), n_procs=4)
    assert long_job.suspension_count == 0
    assert short_job.first_start_time == pytest.approx(1_000.0)


def test_preemption_only_at_sweep_ticks():
    """Suspensions happen in the periodic routine, not on arrival."""
    long_job = make_job(job_id=0, submit=0.0, run=10_000.0, procs=4)
    short_job = make_job(job_id=1, submit=1.0, run=10.0, procs=4)
    run_sim([long_job, short_job], ss(sf=1.0, interval=500.0), n_procs=4)
    # SF=1 means the arrival would qualify instantly, but the sweep
    # runs at t=500, 1000, ... so the suspension cannot precede t=500.
    assert short_job.first_start_time >= 500.0


def test_victim_resumes_on_same_processors():
    long_job = make_job(job_id=0, submit=0.0, run=500.0, procs=3)
    short_job = make_job(job_id=1, submit=1.0, run=30.0, procs=4)
    run_sim([long_job, short_job], ss(sf=1.5, interval=10.0), n_procs=4)
    assert long_job.state is JobState.FINISHED
    assert long_job.suspension_count >= 1
    # same-processor resume is enforced by Job.mark_started; reaching
    # FINISHED after suspension proves the scheduler satisfied it


def test_suspends_lowest_priority_victims():
    """Victims are taken in ascending xfactor: the freshly started job
    (low frozen priority) goes before one that waited long."""
    early_waiter = make_job(job_id=0, submit=0.0, run=2000.0, procs=2)
    fresh = make_job(job_id=1, submit=1000.0, run=2000.0, procs=2)
    preemptor = make_job(job_id=2, submit=1000.0, run=60.0, procs=2)
    # early_waiter starts at 0 (xf 1); fresh starts at 1000 (xf ~1);
    # both run; preemptor needs 2 procs -> suspends exactly one victim.
    run_sim([early_waiter, fresh, preemptor], ss(sf=1.2, interval=30.0), n_procs=4)
    assert preemptor.finish_time < 2000.0
    assert early_waiter.suspension_count + fresh.suspension_count == 1


def test_widest_candidate_suspended_first():
    """With several eligible victims, the widest is suspended first so
    the fewest jobs are disturbed (pseudocode suspend_jobs_1)."""
    wide = make_job(job_id=0, submit=0.0, run=5000.0, procs=4)
    narrow1 = make_job(job_id=1, submit=0.0, run=5000.0, procs=2)
    narrow2 = make_job(job_id=2, submit=0.0, run=5000.0, procs=2)
    preemptor = make_job(job_id=3, submit=1.0, run=60.0, procs=4)
    run_sim(
        [wide, narrow1, narrow2, preemptor], ss(sf=1.5, interval=10.0), n_procs=8
    )
    assert wide.suspension_count == 1
    assert narrow1.suspension_count == 0
    assert narrow2.suspension_count == 0


# ----------------------------------------------------------------------
# the half-width rule
# ----------------------------------------------------------------------
def test_width_rule_protects_wide_jobs():
    """A sequential job may never suspend a 300-proc job (section IV-B)."""
    wide = make_job(job_id=0, submit=0.0, run=10_000.0, procs=8)
    seq = make_job(job_id=1, submit=1.0, run=30.0, procs=1)
    run_sim([wide, seq], ss(sf=1.1, interval=10.0), n_procs=8)
    assert wide.suspension_count == 0
    assert seq.first_start_time == pytest.approx(10_000.0)


def test_width_rule_allows_half_width():
    wide = make_job(job_id=0, submit=0.0, run=10_000.0, procs=8)
    half = make_job(job_id=1, submit=1.0, run=30.0, procs=4)
    run_sim([wide, half], ss(sf=1.5, interval=10.0), n_procs=8)
    assert wide.suspension_count == 1
    assert half.finish_time < 1000.0


def test_width_rule_disabled_changes_behaviour():
    wide = make_job(job_id=0, submit=0.0, run=10_000.0, procs=8)
    seq = make_job(job_id=1, submit=1.0, run=30.0, procs=1)
    run_sim([wide, seq], ss(sf=1.1, interval=10.0, width_rule=False), n_procs=8)
    assert wide.suspension_count == 1
    assert seq.finish_time < 1000.0


# ----------------------------------------------------------------------
# re-entry (suspend_jobs_2 path)
# ----------------------------------------------------------------------
def test_reentry_waives_width_rule():
    """A suspended wide job may evict a narrow squatter from its
    processors (section IV-C's explicit exception)."""
    wide = make_job(job_id=0, submit=0.0, run=600.0, procs=8)
    preemptor = make_job(job_id=1, submit=1.0, run=400.0, procs=4)
    squatter = make_job(job_id=2, submit=2.0, run=10_000.0, procs=1)
    result = run_sim(
        [wide, preemptor, squatter], ss(sf=1.5, interval=10.0), n_procs=8
    )
    # wide gets suspended by preemptor eventually; squatter (1 proc,
    # long) lands on one of wide's processors; wide must still finish.
    assert wide.state is JobState.FINISHED
    assert result.total_suspensions >= 1


def test_all_blockers_must_qualify_for_reentry():
    """If any running job on the resume set fails the SF test, the
    resume waits (one protected occupant blocks the whole set)."""
    a = make_job(job_id=0, submit=0.0, run=300.0, procs=4)
    b = make_job(job_id=1, submit=1.0, run=100.0, procs=4)
    jobs = [a, b]
    result = run_sim(jobs, ss(sf=2.0, interval=10.0), n_procs=4)
    assert all(j.state is JobState.FINISHED for j in jobs)


# ----------------------------------------------------------------------
# starvation freedom & drain
# ----------------------------------------------------------------------
def test_no_starvation_on_real_mix(ctc_trace_small):
    from repro.workload.archive import CTC

    result = run_sim(
        [j.copy_static() for j in ctc_trace_small], ss(sf=2.0), n_procs=CTC.n_procs
    )
    assert len(result.jobs) == len(ctc_trace_small)


def test_sf1_still_drains(sdsc_trace_small):
    """The thrashing regime must still complete every job."""
    from repro.workload.archive import SDSC

    result = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        ss(sf=1.0),
        n_procs=SDSC.n_procs,
    )
    assert len(result.jobs) == len(sdsc_trace_small)


def test_lower_sf_more_suspensions(sdsc_trace_small):
    from repro.workload.archive import SDSC

    counts = {}
    for sf in (1.5, 2.0, 5.0):
        result = run_sim(
            [j.copy_static() for j in sdsc_trace_small],
            ss(sf=sf),
            n_procs=SDSC.n_procs,
        )
        counts[sf] = result.total_suspensions
    assert counts[1.5] >= counts[2.0] >= counts[5.0]


def test_improves_short_wide_jobs_vs_ns(sdsc_trace_small):
    """The paper's headline claim on the worst category."""
    from repro.metrics.aggregate import per_category_stats
    from repro.schedulers.easy import EasyBackfillScheduler
    from repro.workload.archive import SDSC

    ns = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        EasyBackfillScheduler(),
        n_procs=SDSC.n_procs,
    )
    pre = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        ss(sf=2.0),
        n_procs=SDSC.n_procs,
    )
    ns_stats = per_category_stats(ns.jobs)
    ss_stats = per_category_stats(pre.jobs)
    # very-short wide jobs improve by a large factor
    for cat in (("VS", "W"), ("VS", "VW")):
        if cat in ns_stats and cat in ss_stats and ns_stats[cat].count >= 3:
            assert ss_stats[cat].slowdown.mean < ns_stats[cat].slowdown.mean


def test_scheduler_validates_arguments():
    with pytest.raises(ValueError):
        SelectiveSuspensionScheduler(suspension_factor=0.5)
    with pytest.raises(ValueError):
        SelectiveSuspensionScheduler(preemption_interval=0.0)


def test_name_and_describe():
    sched = ss(sf=1.5)
    assert sched.name == "SS(SF=1.5)"
    assert "60" in sched.describe()

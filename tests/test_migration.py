"""The migratable-restart ablation switch (Parsons & Sevcik model)."""

from __future__ import annotations

from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.experiments.runner import simulate
from repro.metrics.aggregate import overall_stats
from repro.workload.archive import SDSC
from repro.workload.synthetic import generate_trace
from tests.conftest import make_job
from repro.cluster.machine import Cluster
from repro.sim.driver import SchedulingSimulation


def test_migratable_job_restarts_anywhere():
    """With migration, a suspended job resumes on whatever is free."""

    class Script(SelectiveSuspensionScheduler):
        pass

    victim = make_job(job_id=0, submit=0.0, run=500.0, procs=2)
    preemptor = make_job(job_id=1, submit=1.0, run=5000.0, procs=2)
    squatter = make_job(job_id=2, submit=2.0, run=60.0, procs=2)
    sim = SchedulingSimulation(
        Cluster(4),
        SelectiveSuspensionScheduler(suspension_factor=1.2, preemption_interval=10.0),
        migratable=True,
    )
    sim.run([victim, preemptor, squatter])
    # at least one suspension happened and everything drained anyway
    assert victim.state.value == "finished"
    if victim.suspension_count:
        assert not victim.needs_specific_procs  # pins were cleared


def test_migration_never_hurts_drain():
    jobs = generate_trace("SDSC", n_jobs=250, seed=19)
    local = simulate(
        jobs, SelectiveSuspensionScheduler(suspension_factor=2.0), SDSC.n_procs
    )
    migr = simulate(
        jobs,
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        SDSC.n_procs,
        migratable=True,
    )
    assert len(local.jobs) == len(migr.jobs) == len(jobs)


def test_migration_weakly_improves_turnaround_of_suspended_jobs():
    """Freeing the same-processors constraint can only shorten the wait
    of suspended jobs in aggregate (statistical claim on a fixed seed)."""
    jobs = generate_trace("SDSC", n_jobs=400, seed=19)
    local = simulate(
        jobs, SelectiveSuspensionScheduler(suspension_factor=1.5), SDSC.n_procs
    )
    migr = simulate(
        jobs,
        SelectiveSuspensionScheduler(suspension_factor=1.5),
        SDSC.n_procs,
        migratable=True,
    )
    sd_local = overall_stats(local.jobs).slowdown.mean
    sd_migr = overall_stats(migr.jobs).slowdown.mean
    # allow slack: schedules diverge, but migration shouldn't be much worse
    assert sd_migr <= sd_local * 1.25


def test_default_remains_local():
    jobs = generate_trace("SDSC", n_jobs=150, seed=19)
    result = simulate(
        jobs, SelectiveSuspensionScheduler(suspension_factor=1.5), SDSC.n_procs
    )
    # any job that was suspended carried a pinned set until resume; the
    # invariant is enforced inside Job.mark_started, so reaching here
    # with suspensions proves local restart held
    assert result.total_suspensions >= 0

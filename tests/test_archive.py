"""Trace preset registry and calibration metadata."""

from __future__ import annotations

import pytest

from repro.workload.archive import CTC, KTH, PRESETS, SDSC, get_preset
from repro.workload.categories import SIXTEEN_WAY_CATEGORIES


def test_registry_contents():
    assert set(PRESETS) == {"CTC", "SDSC", "KTH"}
    assert PRESETS["CTC"] is CTC


def test_machine_sizes_match_paper():
    assert CTC.n_procs == 430  # Cornell Theory Center SP2
    assert SDSC.n_procs == 128  # San Diego Supercomputer Center SP2
    assert KTH.n_procs == 100  # Swedish Royal Institute of Technology SP2


def test_every_preset_covers_all_categories():
    for preset in PRESETS.values():
        assert set(preset.category_shares) == set(SIXTEEN_WAY_CATEGORIES)
        assert abs(sum(preset.category_shares.values()) - 1.0) < 1e-9


def test_shares_are_probabilities():
    for preset in PRESETS.values():
        assert all(0.0 <= v <= 1.0 for v in preset.category_shares.values())


def test_runtime_bounds_ordered_and_exhaustive():
    for preset in PRESETS.values():
        assert set(preset.runtime_bounds) == {"VS", "S", "L", "VL"}
        for lo, hi in preset.runtime_bounds.values():
            assert 0 < lo < hi


def test_runtime_bounds_respect_table_1():
    """Generator bounds must live inside the Table I class intervals."""
    limits = {
        "VS": (0.0, 600.0),
        "S": (600.0, 3600.0),
        "L": (3600.0, 8 * 3600.0),
        "VL": (8 * 3600.0, float("inf")),
    }
    for preset in PRESETS.values():
        for cls, (lo, hi) in preset.runtime_bounds.items():
            class_lo, class_hi = limits[cls]
            assert lo >= class_lo
            assert hi <= class_hi or class_hi == float("inf")


def test_paper_reference_slowdowns_recorded():
    assert CTC.paper_overall_ns_slowdown == pytest.approx(3.58)
    assert SDSC.paper_overall_ns_slowdown == pytest.approx(14.13)
    assert KTH.paper_overall_ns_slowdown is None  # not published


def test_saturation_loads_recorded():
    assert CTC.saturation_load == pytest.approx(1.6)
    assert SDSC.saturation_load == pytest.approx(1.3)


def test_get_preset_errors():
    with pytest.raises(KeyError):
        get_preset("LANL")

"""Metrics: bounded slowdown, aggregation, utilisation cross-checks."""

from __future__ import annotations

import pytest

from repro.metrics.aggregate import (
    MetricSummary,
    category_shares,
    overall_stats,
    per_category_stats,
    per_category_worst,
    split_by_estimate_quality,
)
from repro.metrics.slowdown import (
    BOUNDED_SLOWDOWN_THRESHOLD,
    bounded_slowdown,
    turnaround_time,
    wait_time,
    xfactor_final,
)
from repro.metrics.utilization import busy_area_from_jobs, utilization_from_jobs
from repro.workload.categories import classify_four_way
from tests.conftest import make_job


def finished_job(
    job_id=0, submit=0.0, start=0.0, run=100.0, procs=1, estimate=None
):
    j = make_job(job_id=job_id, submit=submit, run=run, procs=procs, estimate=estimate)
    j.mark_submitted(submit)
    j.mark_started(start, frozenset(range(procs)))
    j.mark_finished(start + run)
    return j


# ----------------------------------------------------------------------
# per-job metrics
# ----------------------------------------------------------------------
def test_turnaround_is_finish_minus_submit():
    j = finished_job(submit=10.0, start=50.0, run=100.0)
    assert turnaround_time(j) == pytest.approx(140.0)


def test_wait_time_identity():
    j = finished_job(submit=0.0, start=30.0, run=100.0)
    assert wait_time(j) == pytest.approx(30.0)
    assert wait_time(j) + j.run_time + j.total_overhead == pytest.approx(
        turnaround_time(j)
    )


def test_bounded_slowdown_no_wait_is_one():
    j = finished_job(start=0.0, run=100.0)
    assert bounded_slowdown(j) == 1.0


def test_bounded_slowdown_with_wait():
    j = finished_job(submit=0.0, start=100.0, run=100.0)
    assert bounded_slowdown(j) == pytest.approx(2.0)


def test_bounded_slowdown_threshold_limits_short_jobs():
    """Eq. 1's raison d'etre: a 1-second job waiting 60 s is slowed by
    6.1x (threshold 10), not 61x."""
    j = finished_job(submit=0.0, start=60.0, run=1.0)
    assert bounded_slowdown(j) == pytest.approx(61.0 / 10.0)


def test_bounded_slowdown_never_below_one():
    j = finished_job(start=0.0, run=5.0)  # turnaround 5 < threshold 10
    assert bounded_slowdown(j) == 1.0


def test_bounded_slowdown_custom_threshold():
    j = finished_job(submit=0.0, start=60.0, run=1.0)
    assert bounded_slowdown(j, threshold=1.0) == pytest.approx(61.0)
    with pytest.raises(ValueError):
        bounded_slowdown(j, threshold=0.0)


def test_default_threshold_is_ten_seconds():
    assert BOUNDED_SLOWDOWN_THRESHOLD == 10.0


def test_metrics_require_finished_job():
    j = make_job()
    for fn in (turnaround_time, wait_time, bounded_slowdown, xfactor_final):
        with pytest.raises(ValueError, match="not finished"):
            fn(j)


def test_xfactor_final_unbounded():
    j = finished_job(submit=0.0, start=60.0, run=1.0)
    assert xfactor_final(j) == pytest.approx(61.0)


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def test_metric_summary_of_values():
    s = MetricSummary.of([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.mean == pytest.approx(2.0)
    assert s.worst == 3.0
    assert s.total == 6.0


def test_metric_summary_empty():
    s = MetricSummary.of([])
    assert s.count == 0
    assert s.mean == 0.0


def test_per_category_stats_buckets():
    jobs = [
        finished_job(job_id=0, run=60.0, procs=1),  # VS Seq
        finished_job(job_id=1, run=60.0, procs=1),  # VS Seq
        finished_job(job_id=2, run=7200.0, procs=16),  # L W
    ]
    stats = per_category_stats(jobs)
    assert stats[("VS", "Seq")].count == 2
    assert stats[("L", "W")].count == 1
    assert set(stats) == {("VS", "Seq"), ("L", "W")}


def test_per_category_with_four_way_classifier():
    jobs = [finished_job(job_id=0, run=60.0, procs=1)]
    stats = per_category_stats(jobs, classifier=classify_four_way)
    assert set(stats) == {("S", "N")}


def test_quality_filter():
    well = finished_job(job_id=0, run=100.0, estimate=150.0)
    badly = finished_job(job_id=1, run=100.0, estimate=500.0)
    stats_w = per_category_stats([well, badly], quality="well")
    stats_b = per_category_stats([well, badly], quality="badly")
    assert sum(s.count for s in stats_w.values()) == 1
    assert sum(s.count for s in stats_b.values()) == 1
    with pytest.raises(ValueError):
        per_category_stats([well], quality="meh")


def test_per_category_worst():
    a = finished_job(job_id=0, submit=0.0, start=0.0, run=100.0)
    b = finished_job(job_id=1, submit=0.0, start=300.0, run=100.0)
    worst = per_category_worst([a, b])
    sd, tat = worst[("VS", "Seq")]
    assert sd == pytest.approx(4.0)
    assert tat == pytest.approx(400.0)


def test_overall_stats_covers_all():
    jobs = [finished_job(job_id=i, run=100.0 * (i + 1)) for i in range(4)]
    o = overall_stats(jobs)
    assert o.count == 4
    assert o.category == ("ALL", "ALL")


def test_split_by_estimate_quality():
    well = finished_job(job_id=0, run=100.0, estimate=120.0)
    badly = finished_job(job_id=1, run=100.0, estimate=900.0)
    ws, bs = split_by_estimate_quality([well, badly])
    assert ws == [well]
    assert bs == [badly]


def test_category_shares_sum_to_one():
    jobs = [
        finished_job(job_id=0, run=60.0, procs=1),
        finished_job(job_id=1, run=60.0, procs=1),
        finished_job(job_id=2, run=7200.0, procs=16),
        finished_job(job_id=3, run=60.0, procs=64),
    ]
    shares = category_shares(jobs)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares[("VS", "Seq")] == pytest.approx(0.5)


def test_category_shares_empty():
    assert category_shares([]) == {}


# ----------------------------------------------------------------------
# utilisation
# ----------------------------------------------------------------------
def test_busy_area_counts_overhead():
    j = finished_job(run=100.0, procs=4)
    j.total_overhead = 10.0
    assert busy_area_from_jobs([j]) == pytest.approx(4 * 110.0)


def test_utilization_from_jobs():
    j = finished_job(run=100.0, procs=4)
    assert utilization_from_jobs([j], n_procs=8, makespan=100.0) == pytest.approx(0.5)
    assert utilization_from_jobs([j], n_procs=8, makespan=0.0) == 0.0


def test_driver_integral_equals_job_areas(ctc_trace_small):
    """Cross-validation of the two utilisation paths on a real run."""
    from repro.schedulers.easy import EasyBackfillScheduler
    from repro.workload.archive import CTC
    from tests.conftest import run_sim

    result = run_sim(
        [j.copy_static() for j in ctc_trace_small],
        EasyBackfillScheduler(),
        n_procs=CTC.n_procs,
    )
    assert result.busy_proc_seconds == pytest.approx(
        busy_area_from_jobs(result.jobs), rel=1e-9
    )

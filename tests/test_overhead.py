"""Suspension-overhead models (section V-A)."""

from __future__ import annotations

import pytest

from repro.core.overhead import DiskSwapOverheadModel, FixedOverheadModel
from tests.conftest import make_job


def test_write_cost_from_memory():
    model = DiskSwapOverheadModel(mb_per_sec_per_proc=2.0)
    job = make_job(memory_mb=500.0)
    assert model.write_cost(job) == pytest.approx(250.0)


def test_suspend_resume_doubles_with_symmetric_restart():
    model = DiskSwapOverheadModel(restart_factor=1.0)
    job = make_job(memory_mb=200.0)
    assert model.suspend_resume_cost(job) == pytest.approx(200.0)


def test_write_only_interpretation():
    model = DiskSwapOverheadModel(restart_factor=0.0)
    job = make_job(memory_mb=200.0)
    assert model.suspend_resume_cost(job) == pytest.approx(100.0)


def test_paper_range_of_costs():
    """100 MB - 1 GB at 2 MB/s: write cost in [50 s, 500 s]."""
    model = DiskSwapOverheadModel()
    for mem in (100.0, 550.0, 1000.0):
        cost = model.write_cost(make_job(memory_mb=mem))
        assert 50.0 <= cost <= 500.0


def test_unknown_memory_substituted_deterministically():
    model = DiskSwapOverheadModel()
    a = make_job(job_id=7, memory_mb=0.0)
    b = make_job(job_id=7, memory_mb=0.0)
    c = make_job(job_id=8, memory_mb=0.0)
    assert model.memory_of(a) == model.memory_of(b)  # same job id, same draw
    assert model.memory_of(a) != model.memory_of(c)
    assert 100.0 <= model.memory_of(a) <= 1000.0


def test_substitution_respects_configured_range():
    model = DiskSwapOverheadModel(default_memory_range_mb=(10.0, 20.0))
    mem = model.memory_of(make_job(job_id=3, memory_mb=0.0))
    assert 10.0 <= mem <= 20.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mb_per_sec_per_proc": 0.0},
        {"restart_factor": -0.5},
        {"default_memory_range_mb": (0.0, 100.0)},
        {"default_memory_range_mb": (200.0, 100.0)},
    ],
)
def test_disk_swap_validates(kwargs):
    with pytest.raises(ValueError):
        DiskSwapOverheadModel(**kwargs)


def test_fixed_model_constant():
    model = FixedOverheadModel(42.0)
    assert model.suspend_resume_cost(make_job(memory_mb=1.0)) == 42.0
    assert model.suspend_resume_cost(make_job(memory_mb=999.0)) == 42.0


def test_fixed_model_validates():
    with pytest.raises(ValueError):
        FixedOverheadModel(-1.0)


def test_overhead_inflates_turnaround_in_simulation(sdsc_trace_small):
    """End to end: the same SS run with overhead has (weakly) worse
    total turnaround and identical job count."""
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.workload.archive import SDSC
    from tests.conftest import run_sim

    free = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
    )
    priced = run_sim(
        [j.copy_static() for j in sdsc_trace_small],
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=SDSC.n_procs,
        overhead_model=DiskSwapOverheadModel(),
    )
    assert len(priced.jobs) == len(free.jobs)
    suspended = [j for j in priced.jobs if j.suspension_count > 0]
    if suspended:
        assert all(j.total_overhead > 0 for j in suspended)
    never = [j for j in priced.jobs if j.suspension_count == 0]
    assert all(j.total_overhead == 0 for j in never)

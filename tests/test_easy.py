"""EASY/aggressive backfilling (the paper's NS baseline)."""

from __future__ import annotations

import pytest

from repro.schedulers.easy import EasyBackfillScheduler
from repro.workload.job import JobState
from tests.conftest import make_job, run_sim


def test_backfills_past_blocked_head():
    """A short narrow job jumps the wide blocked head (section II-A-2)."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=200.0, procs=8),  # blocked head
        make_job(job_id=2, submit=2.0, run=50.0, procs=2),  # terminates before head
    ]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=8)
    assert jobs[2].first_start_time == pytest.approx(2.0)
    assert jobs[1].first_start_time == pytest.approx(100.0)


def test_backfill_must_not_delay_head():
    """A backfill candidate that would overrun the head's reservation
    and use its processors must wait."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=200.0, procs=8),  # head, reserved at 100
        make_job(job_id=2, submit=2.0, run=300.0, procs=3),  # would delay head
    ]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=8)
    assert jobs[1].first_start_time == pytest.approx(100.0)  # not delayed
    assert jobs[2].first_start_time >= 300.0  # behind the head


def test_backfill_on_spare_processors_beyond_head_need():
    """Paper's second condition: a job on processors the head will not
    need may run past the head's start time."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=4),
        make_job(job_id=1, submit=1.0, run=100.0, procs=6),  # head: starts at 100
        make_job(job_id=2, submit=2.0, run=500.0, procs=2),  # spare: 8-6=2 free at 100
    ]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=8)
    assert jobs[2].first_start_time == pytest.approx(2.0)
    assert jobs[1].first_start_time == pytest.approx(100.0)


def test_fig2_scenario():
    """The paper's Fig 2: job 3 backfills ahead of 1 and 2."""
    # running jobs occupy the machine such that queued job 1 (wide) waits;
    # queued job 3 (small, short) fits the hole before job 1's reservation.
    jobs = [
        make_job(job_id=10, submit=0.0, run=100.0, procs=6),  # running long
        make_job(job_id=11, submit=0.0, run=40.0, procs=4),  # running short
        make_job(job_id=1, submit=1.0, run=100.0, procs=8),  # queued wide (head)
        make_job(job_id=2, submit=2.0, run=100.0, procs=6),  # queued
        make_job(job_id=3, submit=3.0, run=30.0, procs=4),  # backfill candidate
    ]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=10)
    # job 3 backfills into the hole left by the short runner (t=40),
    # finishing at 70 -- before the head's reservation at t=100
    assert jobs[4].first_start_time == pytest.approx(40.0)
    assert jobs[4].finish_time == pytest.approx(70.0)
    assert jobs[2].first_start_time == pytest.approx(100.0)  # head not delayed
    # job 2 (6 procs) queued behind the head could not backfill at 40
    assert jobs[3].first_start_time >= 100.0


def test_uses_estimates_not_actuals_for_planning():
    """With an over-estimated running job, the head's reservation is
    pessimistic; when the job ends early the head starts immediately."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=50.0, procs=8, estimate=500.0),
        make_job(job_id=1, submit=1.0, run=10.0, procs=8),
    ]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=8)
    assert jobs[1].first_start_time == pytest.approx(50.0)  # early completion used


def test_short_job_backfills_thanks_to_estimate():
    """Backfill eligibility is judged on the estimate: an overestimated
    short job cannot sneak into a hole its estimate does not fit."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=200.0, procs=8),  # head at t=100
        # actual 50 fits the 99s hole, but estimate 400 does not:
        make_job(job_id=2, submit=2.0, run=50.0, procs=3, estimate=400.0),
    ]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=8)
    assert jobs[2].first_start_time >= 300.0


def test_fifo_when_everything_fits():
    jobs = [make_job(job_id=i, submit=float(i), run=10.0, procs=1) for i in range(6)]
    run_sim(jobs, EasyBackfillScheduler(), n_procs=8)
    assert all(j.first_start_time == pytest.approx(j.submit_time) for j in jobs)


def test_drains_mixed_workload(ctc_trace_small):
    from repro.workload.archive import CTC

    result = run_sim(
        [j.copy_static() for j in ctc_trace_small],
        EasyBackfillScheduler(),
        n_procs=CTC.n_procs,
    )
    assert len(result.jobs) == len(ctc_trace_small)
    assert all(j.state is JobState.FINISHED for j in result.jobs)


def test_no_suspensions_ever(ctc_trace_small):
    from repro.workload.archive import CTC

    result = run_sim(
        [j.copy_static() for j in ctc_trace_small],
        EasyBackfillScheduler(),
        n_procs=CTC.n_procs,
    )
    assert result.total_suspensions == 0
    assert all(j.suspension_count == 0 for j in result.jobs)


def test_beats_fcfs_on_average_wait(ctc_trace_small):
    """Backfilling exists to beat FCFS on responsiveness."""
    from repro.metrics.aggregate import overall_stats
    from repro.schedulers.fcfs import FCFSScheduler
    from repro.workload.archive import CTC

    easy = run_sim(
        [j.copy_static() for j in ctc_trace_small],
        EasyBackfillScheduler(),
        n_procs=CTC.n_procs,
    )
    fcfs = run_sim(
        [j.copy_static() for j in ctc_trace_small],
        FCFSScheduler(),
        n_procs=CTC.n_procs,
    )
    assert (
        overall_stats(easy.jobs).slowdown.mean
        <= overall_stats(fcfs.jobs).slowdown.mean
    )

"""Deterministic fault injection for the grid executor.

:func:`run_grid`'s recovery paths (retry, timeout cull, pool respawn,
degradation) only fire when workers misbehave, so the tests need a
simulate function that misbehaves *on purpose* -- and does so the same
way every run, across processes, exactly ``times`` times per cell.

The moving parts:

* :class:`FaultSpec` -- what one cell does wrong (``CRASH`` raises,
  ``HANG`` sleeps forever, ``KILL`` SIGKILLs the worker so the whole
  pool breaks, ``KILL_RUN`` SIGKILLs the worker's *parent* -- the
  coordinator process -- for crash-resume acceptance tests) and how
  many attempts it poisons.
* :class:`FaultPlan` -- cell key -> :class:`FaultSpec`, plus a state
  directory.  Workers are separate processes sharing no memory, so
  "which attempt is this?" is decided by **atomically claiming marker
  files** (``os.open`` with ``O_CREAT | O_EXCL``) under ``state_dir``:
  the first process to claim marker ``n`` performs faulty attempt
  ``n``; once all ``times`` markers exist every later attempt runs the
  real simulation.  The claim is race-free even if a retry lands on a
  different worker -- or, after a pool respawn, in a different pool.
* :func:`faulty_simulate` -- the drop-in for
  :func:`repro.experiments.parallel.simulate_cell`.  Bind the plan with
  ``functools.partial(faulty_simulate, plan)``: a partial of a
  module-level function over a frozen dataclass of strings stays
  picklable, which pool submission requires.

Everything here is test infrastructure; production code never imports
this module.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.experiments.parallel import GridCell, simulate_cell
from repro.sim.driver import SimulationResult

#: raise inside the worker; the executor sees an ordinary cell failure
CRASH = "crash"
#: sleep far past any test timeout; only a cell_timeout cull ends it
HANG = "hang"
#: SIGKILL the worker process itself -> BrokenProcessPool upstream
KILL = "kill"
#: SIGKILL the worker's parent (the coordinating test subprocess) --
#: simulates the whole run dying mid-grid for resume acceptance tests
KILL_RUN = "kill_run"

KINDS = (CRASH, HANG, KILL, KILL_RUN)

#: how long a HANG sleeps; effectively forever next to test timeouts
HANG_SECONDS = 3600.0


class InjectedCrash(RuntimeError):
    """The deliberate failure :data:`CRASH` raises -- never seen in
    production, so tests can assert on the exact exception type."""


@dataclass(frozen=True)
class FaultSpec:
    """What one cell does wrong, and for how many attempts."""

    kind: str
    #: number of attempts poisoned before the cell starts succeeding
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.times < 1:
            raise ValueError("times must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, cross-process schedule of injected faults.

    Frozen and string-keyed so a ``functools.partial`` over it pickles
    into pool workers unchanged.
    """

    #: directory for the attempt-claim marker files; must outlive the
    #: grid run (tests pass ``tmp_path`` subdirectories)
    state_dir: str
    #: cell key -> fault; unlisted cells simulate normally
    faults: Mapping[str, FaultSpec] = field(default_factory=dict)

    def attempts_claimed(self, key: str) -> int:
        """How many faulty attempts of *key* have been performed."""
        spec = self.faults.get(key)
        if spec is None:
            return 0
        return sum(
            1 for n in range(spec.times) if _marker(self.state_dir, key, n).exists()
        )


def _marker(state_dir: str, key: str, n: int) -> Path:
    digest = hashlib.sha256(key.encode()).hexdigest()[:16]
    return Path(state_dir) / f"{digest}.{n}"


def _claim(state_dir: str, key: str, times: int) -> bool:
    """Atomically claim the next faulty attempt of *key*, if any remain.

    ``O_CREAT | O_EXCL`` makes creation a test-and-set: exactly one
    process wins each marker, so exactly ``times`` attempts fault no
    matter how attempts are distributed over workers and pools.
    """
    os.makedirs(state_dir, exist_ok=True)
    for n in range(times):
        try:
            fd = os.open(_marker(state_dir, key, n), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def faulty_simulate(plan: FaultPlan, cell: GridCell) -> SimulationResult:
    """:func:`simulate_cell` with *plan*'s faults injected.

    Module-level on purpose -- bind the plan with ``functools.partial``
    so the resulting callable pickles into pool workers.
    """
    spec = plan.faults.get(cell.key)
    if spec is not None and _claim(plan.state_dir, cell.key, spec.times):
        if spec.kind == CRASH:
            raise InjectedCrash(f"injected crash for cell {cell.key!r}")
        if spec.kind == HANG:
            time.sleep(HANG_SECONDS)
            raise InjectedCrash(f"hung cell {cell.key!r} unexpectedly woke up")
        if spec.kind == KILL:
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == KILL_RUN:
            os.kill(os.getppid(), signal.SIGKILL)
            # the parent is gone; die too so the cell never completes
            os.kill(os.getpid(), signal.SIGKILL)
    return simulate_cell(cell)

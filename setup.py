"""Shim for environments whose setuptools predates full PEP 660 support.

``pip install -e .`` on modern toolchains uses pyproject.toml directly;
on older ones (no `wheel` package available offline) this file lets
``python setup.py develop`` provide the editable install.
"""

from setuptools import setup

setup()
